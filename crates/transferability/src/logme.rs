//! LogME: practical assessment of pre-trained models for transfer learning
//! (You et al., ICML 2021).
//!
//! LogME scores a feature matrix `F` by the maximum marginal evidence of a
//! Bayesian linear regression from `F` to each one-vs-rest label column,
//! optimised over the prior precision `α` and noise precision `β` with
//! MacKay's fixed-point updates. The SVD of `F` makes each iteration O(D).
//!
//! # Kernels
//!
//! Two implementations share this module and are exposed through
//! [`crate::LogMe`]:
//!
//! * **Batched** ([`log_me_batched`]) — the default. Computes all per-class
//!   projections at once as one blocked GEMM `Z = YᵀU` over the dense
//!   one-hot label matrix (`Matrix::matmul_at_b`), then runs the MacKay
//!   fixed point for every class simultaneously as a struct-of-arrays sweep
//!   over `alpha[]/beta[]/gamma[]`.
//! * **Scalar reference** ([`log_me_scalar`]) — one class at a time, with a
//!   cache-friendly row-major pass over `U` (the historical column-major
//!   `u.get(r, i)` inner loop walked the row stride `k` on every step).
//!
//! # Determinism and bit-identity
//!
//! Both kernels produce **bit-identical** scores (asserted by unit and
//! property tests, see `tests/property_tests.rs`):
//!
//! * every reduction accumulates in ascending sample-row order `r` — the
//!   GEMM blocks only tile the *output*, never the reduction;
//! * the one-hot zero-skip in `matmul_at_b` is bit-neutral for finite
//!   inputs (adding `±0.0` to a partial sum that started at `+0.0` never
//!   changes its bits), and non-finite features are rejected up front as
//!   [`ScoreError::NonFiniteInput`];
//! * `Σ_r 1.0` over a class equals `count as f64` exactly for any class
//!   size below 2⁵³;
//! * the fixed-point update and the evidence formula are literally the same
//!   functions ([`mackay_step`], [`evidence`]) called by both kernels, and
//!   per-class state is independent, so interleaving classes (batched)
//!   versus finishing one class at a time (scalar) executes the same scalar
//!   operations in the same order per class.
//!
//! The same argument chains back to the pre-batched implementation, so
//! scores (and any disk-cached artifacts keyed on them) are unchanged.

use tg_linalg::decomp::thin_svd;
use tg_linalg::Matrix;

use crate::scorer::{shim_error, Labels, LogMe, ScoreError, Scorer};

/// Number of fixed-point iterations; the original implementation uses 11
/// and observes convergence well before that.
const FIXED_POINT_ITERS: usize = 11;

/// Shared preamble: shape/finiteness validation and the thin SVD.
/// Returns `(u, sigma², n, d)` with `sigma²` of length `k = min(n, d)`.
fn prepare(features: &Matrix, labels: &Labels) -> Result<(Matrix, Vec<f64>), ScoreError> {
    labels.check_rows(features.rows())?;
    for r in 0..features.rows() {
        if features.row(r).iter().any(|v| !v.is_finite()) {
            return Err(ScoreError::NonFiniteInput);
        }
    }
    let svd = thin_svd(features)?;
    // σ² spectrum, length k = min(n, d) (zero-clamped when rank-deficient).
    let sigma2: Vec<f64> = svd.sigma.iter().map(|s| s * s).collect();
    Ok((svd.u, sigma2))
}

/// One MacKay fixed-point update for a single class.
///
/// Reads the current `(alpha, beta)`, accumulates `gamma`/`m2`/`res2` over
/// the shared σ² spectrum in ascending index order, and writes the clamped
/// next iterate back. Returns `false` (leaving the state untouched) when
/// the step goes non-finite, which freezes the class at its last finite
/// iterate — the historical `break` behaviour.
///
/// Both kernels call this exact function so their per-class arithmetic is
/// identical operation for operation.
#[inline]
fn mackay_step(
    sigma2: &[f64],
    z_sq: &[f64],
    r0: f64,
    nf: f64,
    alpha: &mut f64,
    beta: &mut f64,
    gamma_out: &mut f64,
) -> bool {
    let a = *alpha;
    let b = *beta;
    let mut gamma = 0.0;
    let mut m2 = 0.0;
    let mut res2 = r0;
    for i in 0..sigma2.len() {
        let denom = a + b * sigma2[i];
        gamma += b * sigma2[i] / denom;
        m2 += b * b * sigma2[i] * z_sq[i] / (denom * denom);
        res2 += z_sq[i] * (a / denom) * (a / denom);
    }
    let new_alpha = if m2 > 1e-12 { gamma / m2 } else { a };
    let new_beta = if res2 > 1e-12 { (nf - gamma) / res2 } else { b };
    if !new_alpha.is_finite() || !new_beta.is_finite() {
        return false;
    }
    *alpha = new_alpha.clamp(1e-9, 1e12);
    *beta = new_beta.clamp(1e-9, 1e12);
    *gamma_out = gamma;
    true
}

/// Per-class log evidence at the optimised `(alpha, beta)`, **not** yet
/// divided by `n`. Shared verbatim by both kernels.
#[inline]
fn evidence(
    sigma2: &[f64],
    z_sq: &[f64],
    r0: f64,
    alpha: f64,
    beta: f64,
    nf: f64,
    d: usize,
) -> f64 {
    let k = sigma2.len();
    let mut m2 = 0.0;
    let mut res2 = r0;
    let mut logdet = 0.0;
    for i in 0..k {
        let denom = alpha + beta * sigma2[i];
        m2 += beta * beta * sigma2[i] * z_sq[i] / (denom * denom);
        res2 += z_sq[i] * (alpha / denom) * (alpha / denom);
        logdet += denom.ln();
    }
    // Dimensions beyond the numerical rank contribute ln α each.
    logdet += (d.saturating_sub(k)) as f64 * alpha.ln();
    0.5 * (d as f64 * alpha.ln() + nf * beta.ln()
        - beta * res2
        - alpha * m2
        - logdet
        - nf * (2.0 * std::f64::consts::PI).ln())
}

/// Scalar reference kernel: one class at a time.
///
/// The projection `z = Uᵀy` is accumulated row-major over `U` (for each
/// sample row `r`, axpy `y[r] · u_r` into `z`), which keeps the inner loop
/// on contiguous memory while preserving the ascending-`r` summation order
/// of the original column-major loop bit for bit.
pub(crate) fn log_me_scalar(features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
    let (u, sigma2) = prepare(features, labels)?;
    let n = features.rows();
    let d = features.cols();
    let k = sigma2.len();
    let nf = n as f64;
    let num_classes = labels.num_classes();
    let label_slice = labels.as_slice();

    let mut total = 0.0;
    for class in 0..num_classes {
        // Projections z = Uᵀ y and ‖y‖², row-major over U.
        let mut z = vec![0.0; k];
        let mut y_sq = 0.0;
        for r in 0..n {
            let yr = if label_slice[r] == class { 1.0 } else { 0.0 };
            y_sq += yr * yr;
            for (zi, &ui) in z.iter_mut().zip(u.row(r)) {
                *zi += ui * yr;
            }
        }
        let z_sq: Vec<f64> = z.iter().map(|v| v * v).collect();
        // Residual outside the column space of F.
        let r0 = (y_sq - z_sq.iter().sum::<f64>()).max(0.0);

        let mut alpha = 1.0f64;
        let mut beta = 1.0f64;
        let mut gamma = 0.0f64;
        for _ in 0..FIXED_POINT_ITERS {
            if !mackay_step(&sigma2, &z_sq, r0, nf, &mut alpha, &mut beta, &mut gamma) {
                break;
            }
        }
        total += evidence(&sigma2, &z_sq, r0, alpha, beta, nf, d) / nf;
    }
    Ok(total / num_classes as f64)
}

/// Batched kernel: all classes at once.
///
/// One blocked GEMM `Z = YᵀU` over the dense one-hot label matrix replaces
/// `num_classes` separate projection passes (the kernel's one-hot zero-skip
/// makes it an `O(n·k)` scatter of `U` rows into per-class `Z` rows), then
/// the MacKay fixed point runs for every class inside each sweep —
/// struct-of-arrays `alpha[]/beta[]/gamma[]` with a `frozen[]` mask
/// replacing the scalar path's early `break`.
pub(crate) fn log_me_batched(features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
    let (u, sigma2) = prepare(features, labels)?;
    let n = features.rows();
    let d = features.cols();
    let k = sigma2.len();
    let nf = n as f64;
    let num_classes = labels.num_classes();

    // Z = YᵀU, one contiguous row of projections per class (C × k).
    let z = labels.one_hot().matmul_at_b(&u);
    let counts = labels.class_counts();

    // z², plus the out-of-column-space residual r0 per class. The running
    // sum mirrors the reference's ascending-index `z_sq.iter().sum()`, and
    // `count as f64` is exactly the reference's Σ y_r² (a sum of 1.0s).
    let mut z_sq = vec![0.0; num_classes * k];
    let mut r0 = vec![0.0; num_classes];
    for (class, r0c) in r0.iter_mut().enumerate() {
        let mut sum = 0.0;
        for (zs, &zi) in z_sq[class * k..(class + 1) * k]
            .iter_mut()
            .zip(z.row(class))
        {
            *zs = zi * zi;
            sum += *zs;
        }
        *r0c = (counts[class] as f64 - sum).max(0.0);
    }

    // Struct-of-arrays MacKay sweep: iteration-outer, class-inner. Classes
    // are independent, so this interleaving is bit-identical to finishing
    // one class at a time.
    let mut alpha = vec![1.0f64; num_classes];
    let mut beta = vec![1.0f64; num_classes];
    let mut gamma = vec![0.0f64; num_classes];
    let mut frozen = vec![false; num_classes];
    for _ in 0..FIXED_POINT_ITERS {
        for class in 0..num_classes {
            if frozen[class] {
                continue;
            }
            if !mackay_step(
                &sigma2,
                &z_sq[class * k..(class + 1) * k],
                r0[class],
                nf,
                &mut alpha[class],
                &mut beta[class],
                &mut gamma[class],
            ) {
                frozen[class] = true;
            }
        }
    }

    let mut total = 0.0;
    for class in 0..num_classes {
        total += evidence(
            &sigma2,
            &z_sq[class * k..(class + 1) * k],
            r0[class],
            alpha[class],
            beta[class],
            nf,
            d,
        ) / nf;
    }
    Ok(total / num_classes as f64)
}

/// LogME score of features (`n × D`) against integer labels in
/// `0..num_classes`. Higher is better. Returns the mean per-class log
/// evidence per sample.
#[deprecated(note = "use `LogMe` (batched by default) through the `Scorer` trait")]
pub fn log_me(features: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let scored = Labels::new(labels, num_classes)
        .and_then(|labels| LogMe::batched().score(features, &labels));
    assert!(scored.is_ok(), "log_me: {}", shim_error(&scored));
    scored.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_features;
    use tg_rng::Rng;

    fn score(kernel: LogMe, f: &Matrix, y: &[usize], c: usize) -> f64 {
        kernel.score(f, &Labels::new(y, c).unwrap()).unwrap()
    }

    fn both_identical(f: &Matrix, y: &[usize], c: usize) -> f64 {
        let b = score(LogMe::batched(), f, y, c);
        let s = score(LogMe::scalar(), f, y, c);
        assert_eq!(
            b.to_bits(),
            s.to_bits(),
            "batched {b} != scalar {s} on {}x{}, {c} classes",
            f.rows(),
            f.cols()
        );
        b
    }

    #[test]
    fn separable_scores_higher_than_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let (f_good, y) = clustered_features(&mut rng, 200, 16, 4, 3.0);
        let (f_bad, _) = clustered_features(&mut rng, 200, 16, 4, 0.0);
        let good = both_identical(&f_good, &y, 4);
        let bad = both_identical(&f_bad, &y, 4);
        assert!(good > bad, "good {good} should beat bad {bad}");
    }

    #[test]
    fn monotone_in_separation() {
        let mut rng = Rng::seed_from_u64(2);
        let mut last = f64::NEG_INFINITY;
        for sep in [0.0, 1.0, 2.0, 4.0] {
            let (f, y) = clustered_features(&mut rng, 240, 12, 3, sep);
            let s = both_identical(&f, &y, 3);
            assert!(s > last, "sep {sep}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn scale_invariance_is_mild() {
        // LogME is not exactly scale-invariant but must not explode under
        // feature rescaling (the evidence adapts α, β).
        let mut rng = Rng::seed_from_u64(3);
        let (f, y) = clustered_features(&mut rng, 150, 8, 3, 2.0);
        let s1 = both_identical(&f, &y, 3);
        let s2 = both_identical(&f.scale(10.0), &y, 3);
        assert!((s1 - s2).abs() < 1.0, "s1 {s1} s2 {s2}");
    }

    #[test]
    fn handles_rank_deficient_features() {
        // Duplicate columns: rank D/2.
        let mut rng = Rng::seed_from_u64(4);
        let (half, y) = clustered_features(&mut rng, 120, 6, 3, 2.0);
        let f = half.hstack(&half);
        assert!(both_identical(&f, &y, 3).is_finite());
    }

    #[test]
    fn binary_case_works() {
        let mut rng = Rng::seed_from_u64(5);
        let (f, y) = clustered_features(&mut rng, 160, 10, 2, 2.5);
        assert!(both_identical(&f, &y, 2).is_finite());
    }

    #[test]
    fn single_sample_and_absent_classes() {
        // Class 2 has exactly one sample; class 3 never occurs.
        let mut rng = Rng::seed_from_u64(6);
        let (f, mut y) = clustered_features(&mut rng, 90, 6, 2, 2.0);
        y[17] = 2;
        assert!(both_identical(&f, &y, 4).is_finite());
    }

    #[test]
    fn wide_features_more_dims_than_samples() {
        // n < D exercises the k = n branch of the thin SVD.
        let mut rng = Rng::seed_from_u64(7);
        let (f, y) = clustered_features(&mut rng, 12, 20, 3, 2.0);
        assert!(both_identical(&f, &y, 3).is_finite());
    }

    #[test]
    fn mismatched_labels_error_instead_of_panic() {
        let f = Matrix::zeros(10, 4);
        let labels = Labels::new(&[0, 1], 2).unwrap();
        assert_eq!(
            LogMe::batched().score(&f, &labels),
            Err(ScoreError::LabelCountMismatch {
                labels: 2,
                rows: 10
            })
        );
        assert_eq!(
            LogMe::scalar().score(&f, &labels),
            Err(ScoreError::LabelCountMismatch {
                labels: 2,
                rows: 10
            })
        );
    }

    #[test]
    fn non_finite_features_error() {
        let mut f = Matrix::zeros(6, 2);
        f.set(3, 1, f64::NAN);
        let labels_vec: Vec<usize> = (0..6).map(|i| i % 2).collect();
        let labels = Labels::new(&labels_vec, 2).unwrap();
        assert_eq!(
            LogMe::batched().score(&f, &labels),
            Err(ScoreError::NonFiniteInput)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_and_panics() {
        let mut rng = Rng::seed_from_u64(8);
        let (f, y) = clustered_features(&mut rng, 120, 8, 3, 2.0);
        let via_shim = log_me(&f, &y, 3);
        assert_eq!(via_shim.to_bits(), both_identical(&f, &y, 3).to_bits());
    }

    #[test]
    #[should_panic(expected = "log_me")]
    #[allow(deprecated)]
    fn rejects_mismatched_labels() {
        let f = Matrix::zeros(10, 4);
        log_me(&f, &[0, 1], 2);
    }
}
