//! LogME: practical assessment of pre-trained models for transfer learning
//! (You et al., ICML 2021).
//!
//! LogME scores a feature matrix `F` by the maximum marginal evidence of a
//! Bayesian linear regression from `F` to each one-vs-rest label column,
//! optimised over the prior precision `α` and noise precision `β` with
//! MacKay's fixed-point updates. The SVD of `F` makes each iteration O(D).

use tg_linalg::decomp::thin_svd;
use tg_linalg::Matrix;

/// Number of fixed-point iterations; the original implementation uses 11
/// and observes convergence well before that.
const FIXED_POINT_ITERS: usize = 11;

/// LogME score of features (`n × D`) against integer labels in
/// `0..num_classes`. Higher is better. Returns the mean per-class log
/// evidence per sample.
pub fn log_me(features: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let n = features.rows();
    assert_eq!(n, labels.len(), "log_me: feature/label count mismatch");
    assert!(num_classes >= 2, "log_me: need at least two classes");
    let d = features.cols();

    // tg-check: allow(tg01, reason = "SVD of finite simulator features always converges; a failure here flags a simulator bug worth crashing on")
    let svd = thin_svd(features).expect("log_me: SVD failed");
    // σ² spectrum (zero-padded to D when rank-deficient).
    let sigma2: Vec<f64> = svd.sigma.iter().map(|s| s * s).collect();
    let k = sigma2.len();

    let mut total = 0.0;
    for class in 0..num_classes {
        // One-vs-rest target column.
        let y: Vec<f64> = labels
            .iter()
            .map(|&l| if l == class { 1.0 } else { 0.0 })
            .collect();
        let y_sq: f64 = y.iter().map(|v| v * v).sum();
        // Projections z = Uᵀ y.
        let z: Vec<f64> = (0..k)
            .map(|i| {
                let mut s = 0.0;
                for r in 0..n {
                    s += svd.u.get(r, i) * y[r];
                }
                s
            })
            .collect();
        let z_sq: Vec<f64> = z.iter().map(|v| v * v).collect();
        // Residual outside the column space of F.
        let r0 = (y_sq - z_sq.iter().sum::<f64>()).max(0.0);

        let mut alpha = 1.0f64;
        let mut beta = 1.0f64;
        for _ in 0..FIXED_POINT_ITERS {
            let mut gamma = 0.0;
            let mut m2 = 0.0;
            let mut res2 = r0;
            for i in 0..k {
                let denom = alpha + beta * sigma2[i];
                gamma += beta * sigma2[i] / denom;
                m2 += beta * beta * sigma2[i] * z_sq[i] / (denom * denom);
                res2 += z_sq[i] * (alpha / denom) * (alpha / denom);
            }
            let new_alpha = if m2 > 1e-12 { gamma / m2 } else { alpha };
            let new_beta = if res2 > 1e-12 {
                (n as f64 - gamma) / res2
            } else {
                beta
            };
            if !new_alpha.is_finite() || !new_beta.is_finite() {
                break;
            }
            alpha = new_alpha.clamp(1e-9, 1e12);
            beta = new_beta.clamp(1e-9, 1e12);
        }

        // Evidence at the optimum.
        let mut m2 = 0.0;
        let mut res2 = r0;
        let mut logdet = 0.0;
        for i in 0..k {
            let denom = alpha + beta * sigma2[i];
            m2 += beta * beta * sigma2[i] * z_sq[i] / (denom * denom);
            res2 += z_sq[i] * (alpha / denom) * (alpha / denom);
            logdet += denom.ln();
        }
        // Dimensions beyond the numerical rank contribute ln α each.
        logdet += (d.saturating_sub(k)) as f64 * alpha.ln();
        let nf = n as f64;
        let evidence = 0.5
            * (d as f64 * alpha.ln() + nf * beta.ln()
                - beta * res2
                - alpha * m2
                - logdet
                - nf * (2.0 * std::f64::consts::PI).ln());
        total += evidence / nf;
    }
    total / num_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_features;
    use tg_rng::Rng;

    #[test]
    fn separable_scores_higher_than_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let (f_good, y) = clustered_features(&mut rng, 200, 16, 4, 3.0);
        let (f_bad, _) = clustered_features(&mut rng, 200, 16, 4, 0.0);
        let good = log_me(&f_good, &y, 4);
        let bad = log_me(&f_bad, &y, 4);
        assert!(good > bad, "good {good} should beat bad {bad}");
    }

    #[test]
    fn monotone_in_separation() {
        let mut rng = Rng::seed_from_u64(2);
        let mut last = f64::NEG_INFINITY;
        for sep in [0.0, 1.0, 2.0, 4.0] {
            let (f, y) = clustered_features(&mut rng, 240, 12, 3, sep);
            let s = log_me(&f, &y, 3);
            assert!(s > last, "sep {sep}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn scale_invariance_is_mild() {
        // LogME is not exactly scale-invariant but must not explode under
        // feature rescaling (the evidence adapts α, β).
        let mut rng = Rng::seed_from_u64(3);
        let (f, y) = clustered_features(&mut rng, 150, 8, 3, 2.0);
        let s1 = log_me(&f, &y, 3);
        let s2 = log_me(&f.scale(10.0), &y, 3);
        assert!((s1 - s2).abs() < 1.0, "s1 {s1} s2 {s2}");
    }

    #[test]
    fn handles_rank_deficient_features() {
        // Duplicate columns: rank D/2.
        let mut rng = Rng::seed_from_u64(4);
        let (half, y) = clustered_features(&mut rng, 120, 6, 3, 2.0);
        let f = half.hstack(&half);
        let s = log_me(&f, &y, 3);
        assert!(s.is_finite());
    }

    #[test]
    fn binary_case_works() {
        let mut rng = Rng::seed_from_u64(5);
        let (f, y) = clustered_features(&mut rng, 160, 10, 2, 2.5);
        assert!(log_me(&f, &y, 2).is_finite());
    }

    #[test]
    #[should_panic(expected = "log_me")]
    fn rejects_mismatched_labels() {
        let f = Matrix::zeros(10, 4);
        log_me(&f, &[0, 1], 2);
    }
}
