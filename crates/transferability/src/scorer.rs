//! The unified, fallible scorer API.
//!
//! Every transferability estimator in this crate is reachable through the
//! [`Scorer`] trait: `score(&features, &labels) -> Result<f64, ScoreError>`.
//! Input validation happens exactly once, up front, when constructing the
//! [`Labels`] view — scorers then assume labels are in range and only report
//! the failure modes they can actually hit (shape mismatch against the
//! feature matrix, too few samples, a numerical decomposition failing).
//!
//! The historical panicking free functions ([`crate::log_me`],
//! [`crate::h_score`], …) remain as `#[deprecated]` shims over this trait.

use std::fmt;

use tg_linalg::decomp::DecompError;
use tg_linalg::Matrix;

use crate::gbc::gbc_impl;
use crate::hscore::h_score_impl;
use crate::leep_nce::{leep_impl, nce_impl};
use crate::logme::{log_me_batched, log_me_scalar};
use crate::parc::parc_impl;
use crate::transrate::trans_rate_impl;

/// Why a transferability score could not be computed.
///
/// Returned by [`Scorer::score`] and [`Labels::new`] instead of panicking,
/// so serving paths can surface bad requests as errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScoreError {
    /// `labels.len()` does not match the number of feature rows.
    LabelCountMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of feature rows supplied.
        rows: usize,
    },
    /// Fewer than two target classes (or an empty source head for
    /// prediction-based estimators) — no ranking signal is definable.
    TooFewClasses {
        /// The class count that was supplied.
        num_classes: usize,
    },
    /// A label value is outside `0..num_classes`.
    LabelOutOfRange {
        /// Index of the offending label.
        index: usize,
        /// The offending label value.
        label: usize,
        /// The declared class count.
        num_classes: usize,
    },
    /// Fewer samples than the estimator's documented minimum.
    TooFewSamples {
        /// Number of samples supplied.
        rows: usize,
        /// Minimum the estimator requires.
        needed: usize,
    },
    /// The feature matrix contains NaN or infinite entries.
    NonFiniteInput,
    /// An underlying matrix decomposition (SVD / Cholesky) failed.
    Decomposition(DecompError),
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::LabelCountMismatch { labels, rows } => {
                write!(f, "label count {labels} does not match feature rows {rows}")
            }
            ScoreError::TooFewClasses { num_classes } => {
                write!(f, "need at least two classes, got {num_classes}")
            }
            ScoreError::LabelOutOfRange {
                index,
                label,
                num_classes,
            } => write!(
                f,
                "label {label} at index {index} is out of range for {num_classes} classes"
            ),
            ScoreError::TooFewSamples { rows, needed } => {
                write!(f, "need at least {needed} samples, got {rows}")
            }
            ScoreError::NonFiniteInput => write!(f, "features contain NaN or infinite values"),
            ScoreError::Decomposition(e) => write!(f, "decomposition failed: {e}"),
        }
    }
}

impl std::error::Error for ScoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScoreError::Decomposition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecompError> for ScoreError {
    fn from(e: DecompError) -> Self {
        ScoreError::Decomposition(e)
    }
}

/// A validated view over integer target labels.
///
/// Construction checks — once — that `num_classes >= 2` and that every
/// label lies in `0..num_classes`. Scorers receive a `Labels` and only
/// verify the per-call invariant they cannot know in advance: that the
/// label count matches the feature-matrix row count
/// ([`Labels::check_rows`]).
///
/// ```
/// use tg_transfer::{Labels, ScoreError};
///
/// let labels = Labels::new(&[0, 1, 1, 0], 2).unwrap();
/// assert_eq!(labels.len(), 4);
/// assert_eq!(labels.class_counts(), vec![2, 2]);
/// assert_eq!(
///     Labels::new(&[0, 1], 1),
///     Err(ScoreError::TooFewClasses { num_classes: 1 })
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Labels<'a> {
    labels: &'a [usize],
    num_classes: usize,
}

impl<'a> Labels<'a> {
    /// Validates `labels` against `num_classes`.
    pub fn new(labels: &'a [usize], num_classes: usize) -> Result<Self, ScoreError> {
        if num_classes < 2 {
            return Err(ScoreError::TooFewClasses { num_classes });
        }
        for (index, &label) in labels.iter().enumerate() {
            if label >= num_classes {
                return Err(ScoreError::LabelOutOfRange {
                    index,
                    label,
                    num_classes,
                });
            }
        }
        Ok(Labels {
            labels,
            num_classes,
        })
    }

    /// The underlying label slice.
    pub fn as_slice(&self) -> &'a [usize] {
        self.labels
    }

    /// The declared class count (`>= 2`).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the label slice is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Errors unless the label count matches the feature-matrix row count.
    pub fn check_rows(&self, rows: usize) -> Result<(), ScoreError> {
        if self.labels.len() != rows {
            return Err(ScoreError::LabelCountMismatch {
                labels: self.labels.len(),
                rows,
            });
        }
        Ok(())
    }

    /// Per-class sample counts (length `num_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Dense one-hot matrix (`len × num_classes`), row `r` has a single
    /// `1.0` in column `labels[r]`.
    pub fn one_hot(&self) -> Matrix {
        let mut y = Matrix::zeros(self.labels.len(), self.num_classes);
        for (r, &l) in self.labels.iter().enumerate() {
            y.set(r, l, 1.0);
        }
        y
    }
}

/// A transferability estimator: features + validated labels in, scalar
/// score out, where **higher means more transferable**.
///
/// For feature-based estimators ([`LogMe`], [`Parc`], [`TransRate`],
/// [`HScore`], [`Gbc`]) `features` is the `n × D` penultimate-layer feature
/// matrix. For prediction-based estimators ([`Leep`], [`Nce`]) it is the
/// `n × Z` source-head probability matrix instead (rows sum to 1);
/// [`Nce`] derives hard pseudo-labels by row-wise argmax internally.
///
/// ```
/// use tg_transfer::{Labels, LogMe, Scorer};
/// use tg_linalg::Matrix;
///
/// let features = Matrix::from_fn(8, 3, |r, c| ((r * 3 + c) % 5) as f64);
/// let labels = Labels::new(&[0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
/// let score = LogMe::batched().score(&features, &labels).unwrap();
/// assert!(score.is_finite());
/// ```
pub trait Scorer {
    /// Display name of the estimator.
    fn name(&self) -> &'static str;

    /// Scores `features` against `labels`.
    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError>;
}

/// Which LogME kernel a [`LogMe`] scorer runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogMeKernel {
    /// Blocked `Z = YᵀU` GEMM + struct-of-arrays fixed point (default).
    #[default]
    Batched,
    /// Straightforward per-class row-major reference loop.
    Scalar,
}

/// Which decomposition feeds the batched LogME kernel's spectrum and label
/// projections.
///
/// The evidence is mathematically identical along every path (see the
/// `logme` module docs for the identity); the paths differ in cost and in
/// floating-point rounding. `Svd` is the bit-exactness reference — the
/// historical thin-SVD pipeline, bit-identical to the scalar kernel and the
/// seed implementation. `Gram`, `Jacobi` and `Truncated` agree with it to
/// documented tolerances, asserted by property tests and the bench gates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DecompPath {
    /// Heuristic: `Gram` when `n >= 4·d` (the paper-scale regime), `Svd`
    /// otherwise. This is the default.
    #[default]
    Auto,
    /// `n × d` thin SVD (Gram eigendecomposition + `U = A V Σ⁻¹`): the
    /// bit-exactness reference path.
    Svd,
    /// `d × d` Gram eigendecomposition only — the label projections are
    /// computed as `z = Σ⁻¹ Vᵀ (Fᵀy)` without ever materialising `U`,
    /// removing the two `O(n·d²)` passes that dominate the SVD path when
    /// `n ≫ d`.
    Gram,
    /// One-sided (Hestenes) Jacobi SVD with deterministic, optionally
    /// parallel rotation sweeps ([`tg_linalg::decomp::one_sided_jacobi_svd`]).
    Jacobi,
    /// The Gram path plus spectral truncation: trailing eigenvalues whose
    /// cumulative energy is below the documented tolerance
    /// (`TG_LOGME_TRUNC_TOL`, default `1e-6`) are dropped like σ≈0
    /// directions. An explicit opt-in fast mode with a relaxed accuracy
    /// contract (`~1e-3` on the evidence).
    Truncated,
}

/// The decomposition a LogME score actually ran (the [`DecompPath::Auto`]
/// heuristic resolved), used to key per-arm telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompArm {
    /// Thin SVD reference.
    Svd,
    /// Gram-only projection path.
    Gram,
    /// One-sided Jacobi SVD.
    Jacobi,
    /// Gram path with spectral truncation.
    Truncated,
}

impl DecompArm {
    /// Every arm, in [`DecompArm::index`] order.
    pub const ALL: [DecompArm; 4] = [
        DecompArm::Svd,
        DecompArm::Gram,
        DecompArm::Jacobi,
        DecompArm::Truncated,
    ];

    /// Dense index for per-arm accumulator arrays (`0..4`).
    pub const fn index(self) -> usize {
        match self {
            DecompArm::Svd => 0,
            DecompArm::Gram => 1,
            DecompArm::Jacobi => 2,
            DecompArm::Truncated => 3,
        }
    }

    /// Short lowercase label for telemetry rendering and bench JSON keys.
    pub const fn name(self) -> &'static str {
        match self {
            DecompArm::Svd => "svd",
            DecompArm::Gram => "gram",
            DecompArm::Jacobi => "jacobi",
            DecompArm::Truncated => "truncated",
        }
    }
}

/// Jacobi-path tuning carried inside [`LogMe`]. Field semantics match
/// [`tg_linalg::decomp::JacobiOpts`]; the orthogonality tolerance is fixed
/// (the `JacobiOpts` default) so this stays `Eq`-comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JacobiConfig {
    /// Worker threads for the rotation rounds (results are bit-identical at
    /// any value; `1` = sequential).
    pub workers: usize,
    /// Full-sweep budget before `ScoreError::Decomposition(NoConvergence)`.
    pub max_sweeps: usize,
}

impl JacobiConfig {
    /// Sequential sweeps with the default budget.
    pub const DEFAULT: JacobiConfig = JacobiConfig {
        workers: 1,
        max_sweeps: tg_linalg::decomp::MAX_SWEEPS,
    };
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig::DEFAULT
    }
}

/// What a LogME evaluation actually did, alongside the score: which
/// decomposition arm ran, how long it took, and its effective spectrum.
/// Returned by [`LogMe::score_with_report`] and threaded into the
/// workbench's per-arm telemetry.
#[derive(Clone, Copy, Debug)]
pub struct LogMeReport {
    /// The decomposition arm that ran ([`DecompPath::Auto`] resolved).
    pub arm: DecompArm,
    /// Wall-clock spent inside the decomposition (spectrum + label
    /// projections), excluding the evidence fixed point.
    pub decomp: std::time::Duration,
    /// Jacobi sweeps the decomposition used (eigen sweeps for `Svd`/`Gram`
    /// paths, Hestenes sweeps for `Jacobi`).
    pub sweeps: usize,
    /// Number of retained directions with `σ` above the clamp (equals the
    /// kept rank for `Truncated`).
    pub rank: usize,
}

/// Log maximum evidence (You et al., ICML 2021). See the `logme` module.
///
/// Defaults to the batched kernel on the [`DecompPath::Auto`] heuristic;
/// [`LogMe::scalar`] selects the reference kernel, which always runs the
/// SVD path and is bit-identical to `batched().with_path(DecompPath::Svd)`
/// by construction (asserted in tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogMe {
    kernel: LogMeKernel,
    path: DecompPath,
    jacobi: JacobiConfig,
}

impl LogMe {
    /// The blocked/batched kernel (default), on the default
    /// [`DecompPath::Auto`] heuristic.
    pub const fn batched() -> Self {
        LogMe {
            kernel: LogMeKernel::Batched,
            path: DecompPath::Auto,
            jacobi: JacobiConfig::DEFAULT,
        }
    }

    /// The scalar per-class reference kernel (always the SVD path).
    pub const fn scalar() -> Self {
        LogMe {
            kernel: LogMeKernel::Scalar,
            path: DecompPath::Auto,
            jacobi: JacobiConfig::DEFAULT,
        }
    }

    /// Selects the decomposition path of the batched kernel. The scalar
    /// reference kernel ignores this and always runs the SVD path — it
    /// exists to pin the historical bits.
    pub const fn with_path(self, path: DecompPath) -> Self {
        LogMe { path, ..self }
    }

    /// Overrides the Jacobi-path tuning (worker count and sweep budget).
    pub const fn with_jacobi(self, jacobi: JacobiConfig) -> Self {
        LogMe { jacobi, ..self }
    }

    /// Which kernel this instance runs.
    pub const fn kernel(&self) -> LogMeKernel {
        self.kernel
    }

    /// Which decomposition path this instance requests.
    pub const fn path(&self) -> DecompPath {
        self.path
    }

    /// The Jacobi-path tuning.
    pub const fn jacobi(&self) -> JacobiConfig {
        self.jacobi
    }

    /// Builds the serving configuration from the environment: the batched
    /// kernel with `TG_LOGME_DECOMP` selecting the path
    /// (`auto`|`svd`|`gram`|`jacobi`|`truncated`; anything else, including
    /// unset, means `auto`) and `TG_JACOBI_WORKERS` the Jacobi worker count.
    pub fn from_env() -> Self {
        let path = std::env::var("TG_LOGME_DECOMP")
            .map(|v| Self::path_from_str(&v))
            .unwrap_or_default();
        let workers = std::env::var("TG_JACOBI_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        LogMe::batched().with_path(path).with_jacobi(JacobiConfig {
            workers,
            ..JacobiConfig::DEFAULT
        })
    }

    /// `TG_LOGME_DECOMP` value parser (case-insensitive; unknown → `Auto`).
    pub(crate) fn path_from_str(v: &str) -> DecompPath {
        match v.trim().to_ascii_lowercase().as_str() {
            "svd" => DecompPath::Svd,
            "gram" => DecompPath::Gram,
            "jacobi" => DecompPath::Jacobi,
            "truncated" => DecompPath::Truncated,
            _ => DecompPath::Auto,
        }
    }

    /// [`Scorer::score`] plus a [`LogMeReport`] describing the
    /// decomposition arm that ran and what it cost.
    pub fn score_with_report(
        &self,
        features: &Matrix,
        labels: &Labels,
    ) -> Result<(f64, LogMeReport), ScoreError> {
        match self.kernel {
            LogMeKernel::Batched => log_me_batched(features, labels, self.path, self.jacobi),
            LogMeKernel::Scalar => log_me_scalar(features, labels),
        }
    }
}

impl Scorer for LogMe {
    fn name(&self) -> &'static str {
        "LogME"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        self.score_with_report(features, labels)
            .map(|(score, _)| score)
    }
}

/// LEEP (Nguyen et al., ICML 2020); `features` is the source-head
/// probability matrix. See the `leep_nce` module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Leep;

impl Scorer for Leep {
    fn name(&self) -> &'static str {
        "LEEP"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        leep_impl(features, labels)
    }
}

/// NCE (Tran et al., ICCV 2019); `features` is the source-head probability
/// matrix, hard pseudo-labels are its row-wise argmax. See
/// the `leep_nce` module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Nce;

impl Scorer for Nce {
    fn name(&self) -> &'static str {
        "NCE"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        labels.check_rows(features.rows())?;
        let z_dim = features.cols();
        if z_dim == 0 {
            return Err(ScoreError::TooFewClasses { num_classes: 0 });
        }
        // Row-wise argmax with `total_cmp` (last maximum wins on exact
        // ties) — the same expression as `ForwardPass::source_labels`, so
        // scoring through the trait matches the historical hard labels.
        let source_labels: Vec<usize> = (0..features.rows())
            .map(|r| {
                features
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        nce_impl(&source_labels, labels, z_dim)
    }
}

/// PARC (Bolya et al., NeurIPS 2021). See the `parc` module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Parc;

impl Scorer for Parc {
    fn name(&self) -> &'static str {
        "PARC"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        parc_impl(features, labels)
    }
}

/// TransRate (Huang et al., ICML 2022). See the `transrate` module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransRate;

impl Scorer for TransRate {
    fn name(&self) -> &'static str {
        "TransRate"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        trans_rate_impl(features, labels)
    }
}

/// H-score (Bao et al., ICIP 2019). See the `hscore` module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HScore;

impl Scorer for HScore {
    fn name(&self) -> &'static str {
        "H-score"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        h_score_impl(features, labels)
    }
}

/// GBC (Pándy et al., CVPR 2022). See the `gbc` module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gbc;

impl Scorer for Gbc {
    fn name(&self) -> &'static str {
        "GBC"
    }

    fn score(&self, features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
        gbc_impl(features, labels)
    }
}

/// Formats the error of a failed score for the deprecated panicking shims
/// (empty string when `Ok`, so it can sit inside a lazy `assert!` message).
pub(crate) fn shim_error(r: &Result<f64, ScoreError>) -> String {
    match r {
        Ok(_) => String::new(),
        Err(e) => e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_validate_once() {
        assert!(Labels::new(&[0, 1, 2], 3).is_ok());
        assert_eq!(
            Labels::new(&[0, 1], 0),
            Err(ScoreError::TooFewClasses { num_classes: 0 })
        );
        assert_eq!(
            Labels::new(&[0, 1], 1),
            Err(ScoreError::TooFewClasses { num_classes: 1 })
        );
        assert_eq!(
            Labels::new(&[0, 3, 1], 3),
            Err(ScoreError::LabelOutOfRange {
                index: 1,
                label: 3,
                num_classes: 3
            })
        );
    }

    #[test]
    fn labels_accessors() {
        let l = Labels::new(&[1, 0, 1, 1], 2).unwrap();
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
        assert_eq!(l.num_classes(), 2);
        assert_eq!(l.as_slice(), &[1, 0, 1, 1]);
        assert_eq!(l.class_counts(), vec![1, 3]);
        assert!(l.check_rows(4).is_ok());
        assert_eq!(
            l.check_rows(7),
            Err(ScoreError::LabelCountMismatch { labels: 4, rows: 7 })
        );
    }

    #[test]
    fn one_hot_shape_and_content() {
        let l = Labels::new(&[2, 0, 1], 3).unwrap();
        let y = l.one_hot();
        assert_eq!(y.shape(), (3, 3));
        for r in 0..3 {
            for c in 0..3 {
                let want = if l.as_slice()[r] == c { 1.0 } else { 0.0 };
                assert_eq!(y.get(r, c), want);
            }
        }
    }

    #[test]
    fn error_display_and_source() {
        let e = ScoreError::Decomposition(DecompError::NotPositiveDefinite);
        assert!(e.to_string().contains("decomposition failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ScoreError::LabelCountMismatch { labels: 3, rows: 5 };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
