//! H-score (Bao et al., ICIP 2019): `tr(cov(F)⁻¹ cov_between(F))`.
//!
//! The between-class scatter measured in the whitened feature space — large
//! when class means are far apart relative to overall feature variance.
//! We use a ridge-regularised covariance inverse (shrinkage) for numerical
//! robustness, as later work (e.g. the regularised H-score) recommends.

use tg_linalg::decomp::cholesky_solve;
use tg_linalg::Matrix;

use crate::scorer::{shim_error, HScore, Labels, ScoreError, Scorer};

/// Ridge added to the covariance diagonal (relative to mean variance).
const SHRINKAGE: f64 = 1e-3;

/// Fallible H-score implementation behind [`crate::HScore`].
pub(crate) fn h_score_impl(features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
    let n = features.rows();
    labels.check_rows(n)?;
    if n < 2 {
        return Err(ScoreError::TooFewSamples { rows: n, needed: 2 });
    }
    let d = features.cols();
    let num_classes = labels.num_classes();

    let z = features.center_columns();
    // cov(F) = ZᵀZ / n, ridge-regularised.
    let mut cov = z.gram().scale(1.0 / n as f64);
    let mean_var: f64 = (0..d).map(|i| cov.get(i, i)).sum::<f64>() / d as f64;
    let ridge = (mean_var * SHRINKAGE).max(1e-9);
    for i in 0..d {
        cov.set(i, i, cov.get(i, i) + ridge);
    }

    // Class-conditional means (of centred features) and weights.
    let mut means = vec![vec![0.0; d]; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (i, &c) in labels.as_slice().iter().enumerate() {
        for j in 0..d {
            means[c][j] += z.get(i, j);
        }
        counts[c] += 1;
    }
    for (m, &cnt) in means.iter_mut().zip(&counts) {
        if cnt > 0 {
            for x in m.iter_mut() {
                *x /= cnt as f64;
            }
        }
    }

    // cov_between = Σ_c w_c μ_c μ_cᵀ; tr(cov⁻¹ cov_between) =
    // Σ_c w_c μ_cᵀ cov⁻¹ μ_c — solve per class instead of inverting. The
    // shrinkage-regularised covariance is SPD by construction, so a
    // Cholesky failure surfaces as a (never-expected) ScoreError rather
    // than a panic.
    let mut score = 0.0;
    for (m, &cnt) in means.iter().zip(&counts) {
        if cnt == 0 {
            continue;
        }
        let w = cnt as f64 / n as f64;
        let x = cholesky_solve(&cov, m)?;
        let quad: f64 = m.iter().zip(&x).map(|(a, b)| a * b).sum();
        score += w * quad;
    }
    Ok(score)
}

/// H-score of features against labels. Higher is better.
#[deprecated(note = "use `HScore` through the `Scorer` trait")]
pub fn h_score(features: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let scored =
        Labels::new(labels, num_classes).and_then(|labels| HScore.score(features, &labels));
    assert!(scored.is_ok(), "h_score: {}", shim_error(&scored));
    scored.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_features;
    use tg_rng::Rng;

    fn h_score(f: &Matrix, y: &[usize], c: usize) -> f64 {
        HScore.score(f, &Labels::new(y, c).unwrap()).unwrap()
    }

    #[test]
    fn separable_beats_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let (f_good, y) = clustered_features(&mut rng, 240, 10, 4, 3.0);
        let (f_bad, _) = clustered_features(&mut rng, 240, 10, 4, 0.0);
        assert!(h_score(&f_good, &y, 4) > h_score(&f_bad, &y, 4));
    }

    #[test]
    fn nonnegative() {
        let mut rng = Rng::seed_from_u64(2);
        let (f, y) = clustered_features(&mut rng, 150, 8, 3, 1.0);
        assert!(h_score(&f, &y, 3) >= 0.0);
    }

    #[test]
    fn monotone_in_separation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut last = f64::NEG_INFINITY;
        for sep in [0.0, 1.0, 2.0, 4.0] {
            let (f, y) = clustered_features(&mut rng, 300, 8, 3, sep);
            let s = h_score(&f, &y, 3);
            assert!(s > last, "sep {sep}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn handles_missing_classes() {
        let mut rng = Rng::seed_from_u64(4);
        let (f, y) = clustered_features(&mut rng, 90, 6, 3, 2.0);
        assert!(h_score(&f, &y, 8).is_finite());
    }

    #[test]
    fn scale_invariant() {
        // cov⁻¹ whitening makes the H-score invariant to feature scaling.
        let mut rng = Rng::seed_from_u64(5);
        let (f, y) = clustered_features(&mut rng, 200, 8, 3, 2.0);
        let s1 = h_score(&f, &y, 3);
        let s2 = h_score(&f.scale(7.0), &y, 3);
        assert!(
            (s1 - s2).abs() / s1.abs().max(1.0) < 0.02,
            "s1 {s1} s2 {s2}"
        );
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let f = Matrix::zeros(1, 4);
        let labels = Labels::new(&[0], 2).unwrap();
        assert_eq!(
            HScore.score(&f, &labels),
            Err(ScoreError::TooFewSamples { rows: 1, needed: 2 })
        );
    }
}
