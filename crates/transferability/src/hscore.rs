//! H-score (Bao et al., ICIP 2019): `tr(cov(F)⁻¹ cov_between(F))`.
//!
//! The between-class scatter measured in the whitened feature space — large
//! when class means are far apart relative to overall feature variance.
//! We use a ridge-regularised covariance inverse (shrinkage) for numerical
//! robustness, as later work (e.g. the regularised H-score) recommends.

use tg_linalg::decomp::cholesky_solve;
use tg_linalg::Matrix;

/// Ridge added to the covariance diagonal (relative to mean variance).
const SHRINKAGE: f64 = 1e-3;

/// H-score of features against labels. Higher is better.
pub fn h_score(features: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let n = features.rows();
    assert_eq!(n, labels.len(), "h_score: feature/label count mismatch");
    assert!(n > 1, "h_score: need at least two samples");
    let d = features.cols();

    let z = features.center_columns();
    // cov(F) = ZᵀZ / n, ridge-regularised.
    let mut cov = z.gram().scale(1.0 / n as f64);
    let mean_var: f64 = (0..d).map(|i| cov.get(i, i)).sum::<f64>() / d as f64;
    let ridge = (mean_var * SHRINKAGE).max(1e-9);
    for i in 0..d {
        cov.set(i, i, cov.get(i, i) + ridge);
    }

    // Class-conditional means (of centred features) and weights.
    let mut means = vec![vec![0.0; d]; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (i, &c) in labels.iter().enumerate() {
        debug_assert!(c < num_classes);
        for j in 0..d {
            means[c][j] += z.get(i, j);
        }
        counts[c] += 1;
    }
    for (m, &cnt) in means.iter_mut().zip(&counts) {
        if cnt > 0 {
            for x in m.iter_mut() {
                *x /= cnt as f64;
            }
        }
    }

    // cov_between = Σ_c w_c μ_c μ_cᵀ; tr(cov⁻¹ cov_between) =
    // Σ_c w_c μ_cᵀ cov⁻¹ μ_c — solve per class instead of inverting.
    let mut score = 0.0;
    for (m, &cnt) in means.iter().zip(&counts) {
        if cnt == 0 {
            continue;
        }
        let w = cnt as f64 / n as f64;
        // tg-check: allow(tg01, reason = "the shrinkage-regularised covariance is SPD by construction")
        let x = cholesky_solve(&cov, m).expect("h_score: covariance must be SPD");
        let quad: f64 = m.iter().zip(&x).map(|(a, b)| a * b).sum();
        score += w * quad;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_features;
    use tg_rng::Rng;

    #[test]
    fn separable_beats_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let (f_good, y) = clustered_features(&mut rng, 240, 10, 4, 3.0);
        let (f_bad, _) = clustered_features(&mut rng, 240, 10, 4, 0.0);
        assert!(h_score(&f_good, &y, 4) > h_score(&f_bad, &y, 4));
    }

    #[test]
    fn nonnegative() {
        let mut rng = Rng::seed_from_u64(2);
        let (f, y) = clustered_features(&mut rng, 150, 8, 3, 1.0);
        assert!(h_score(&f, &y, 3) >= 0.0);
    }

    #[test]
    fn monotone_in_separation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut last = f64::NEG_INFINITY;
        for sep in [0.0, 1.0, 2.0, 4.0] {
            let (f, y) = clustered_features(&mut rng, 300, 8, 3, sep);
            let s = h_score(&f, &y, 3);
            assert!(s > last, "sep {sep}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn handles_missing_classes() {
        let mut rng = Rng::seed_from_u64(4);
        let (f, y) = clustered_features(&mut rng, 90, 6, 3, 2.0);
        assert!(h_score(&f, &y, 8).is_finite());
    }

    #[test]
    fn scale_invariant() {
        // cov⁻¹ whitening makes the H-score invariant to feature scaling.
        let mut rng = Rng::seed_from_u64(5);
        let (f, y) = clustered_features(&mut rng, 200, 8, 3, 2.0);
        let s1 = h_score(&f, &y, 3);
        let s2 = h_score(&f.scale(7.0), &y, 3);
        assert!(
            (s1 - s2).abs() / s1.abs().max(1.0) < 0.02,
            "s1 {s1} s2 {s2}"
        );
    }
}
