//! Transferability estimators: LogME, LEEP, NCE, PARC, TransRate, H-score.
//!
//! These are the feature-based model-selection baselines of the paper
//! (§II-A, "feature-based model selection"). Each consumes the result of a
//! forward pass of a candidate model over the target dataset — features
//! and/or source-head predictions plus the target labels — and returns a
//! scalar score where **higher means more transferable**.
//!
//! * [`log_me`] — the paper's primary baseline and the source of the
//!   transferability edges in the TransferGraph graph (§V-A3).
//! * [`leep`], [`nce`] — pseudo-label transfer estimators.
//! * [`parc`], [`trans_rate`], [`h_score`] — representation-analysis
//!   estimators, implemented for completeness of the related-work table.
//!
//! # Example
//!
//! ```
//! use tg_zoo::{ModelZoo, ZooConfig, Modality};
//! use tg_transfer::{log_me, leep};
//!
//! let zoo = ModelZoo::build(&ZooConfig::small(3));
//! let m = zoo.models_of(Modality::Image)[0];
//! let d = zoo.targets_of(Modality::Image)[0];
//! let fp = zoo.forward_pass(m, d);
//! let s1 = log_me(&fp.features, &fp.labels, fp.num_classes);
//! let s2 = leep(&fp.source_probs, &fp.labels, fp.num_classes);
//! assert!(s1.is_finite() && s2.is_finite());
//! ```

mod gbc;
mod hscore;
mod leep_nce;
mod logme;
mod parc;
mod transrate;

pub use gbc::gbc;
pub use hscore::h_score;
pub use leep_nce::{leep, nce};
pub use logme::log_me;
pub use parc::parc;
pub use transrate::trans_rate;

use tg_zoo::ForwardPass;

/// The estimators this crate implements, for uniform dispatch in
/// experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Log maximum evidence (You et al., ICML 2021).
    LogMe,
    /// Log expected empirical prediction (Nguyen et al., ICML 2020).
    Leep,
    /// Negative conditional entropy (Tran et al., ICCV 2019).
    Nce,
    /// Pairwise annotation representation comparison (Bolya et al., 2021).
    Parc,
    /// TransRate (Huang et al., ICML 2022).
    TransRate,
    /// H-score (Bao et al., 2019).
    HScore,
    /// Gaussian Bhattacharyya Coefficient (Pándy et al., CVPR 2022).
    Gbc,
}

impl Estimator {
    /// All estimators.
    pub const ALL: [Estimator; 7] = [
        Estimator::LogMe,
        Estimator::Leep,
        Estimator::Nce,
        Estimator::Parc,
        Estimator::TransRate,
        Estimator::HScore,
        Estimator::Gbc,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Estimator::LogMe => "LogME",
            Estimator::Leep => "LEEP",
            Estimator::Nce => "NCE",
            Estimator::Parc => "PARC",
            Estimator::TransRate => "TransRate",
            Estimator::HScore => "H-score",
            Estimator::Gbc => "GBC",
        }
    }

    /// Scores one forward pass.
    pub fn score(&self, fp: &ForwardPass) -> f64 {
        match self {
            Estimator::LogMe => log_me(&fp.features, &fp.labels, fp.num_classes),
            Estimator::Leep => leep(&fp.source_probs, &fp.labels, fp.num_classes),
            Estimator::Nce => nce(
                &fp.source_labels(),
                &fp.labels,
                fp.num_source_classes,
                fp.num_classes,
            ),
            Estimator::Parc => parc(&fp.features, &fp.labels, fp.num_classes),
            Estimator::TransRate => trans_rate(&fp.features, &fp.labels, fp.num_classes),
            Estimator::HScore => h_score(&fp.features, &fp.labels, fp.num_classes),
            Estimator::Gbc => gbc(&fp.features, &fp.labels, fp.num_classes),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use tg_linalg::Matrix;
    use tg_rng::Rng;

    /// Synthetic class-structured features: `sep` controls how separable the
    /// classes are.
    pub fn clustered_features(
        rng: &mut Rng,
        n: usize,
        dim: usize,
        classes: usize,
        sep: f64,
    ) -> (Matrix, Vec<usize>) {
        let protos: Vec<Vec<f64>> = (0..classes)
            .map(|_| {
                let v = rng.normal_vec(dim, 0.0, 1.0);
                let norm = tg_linalg::matrix::norm(&v).max(1e-12);
                v.into_iter().map(|x| x / norm).collect()
            })
            .collect();
        let mut f = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            labels.push(c);
            for j in 0..dim {
                f.set(i, j, sep * protos[c][j] + rng.normal(0.0, 1.0));
            }
        }
        (f, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_zoo::{Modality, ModelZoo, ZooConfig};

    #[test]
    fn all_estimators_finite_on_zoo_forward_pass() {
        let zoo = ModelZoo::build(&ZooConfig::small(13));
        let m = zoo.models_of(Modality::Image)[1];
        let d = zoo.targets_of(Modality::Image)[2];
        let fp = zoo.forward_pass(m, d);
        for est in Estimator::ALL {
            let s = est.score(&fp);
            assert!(s.is_finite(), "{} returned {s}", est.name());
        }
    }

    #[test]
    fn estimators_correlate_with_ground_truth_across_models() {
        // The core sanity property of the whole simulation: feature-based
        // scores must positively correlate with fine-tune accuracy, but not
        // perfectly (they are a noisy channel).
        let zoo = ModelZoo::build(&ZooConfig::paper(17));
        let d = zoo.dataset_by_name("pets");
        let models = zoo.models_of(Modality::Image);
        let accs: Vec<f64> = models
            .iter()
            .map(|&m| zoo.fine_tune(m, d, tg_zoo::FineTuneMethod::Full))
            .collect();
        let sub: Vec<_> = models.iter().step_by(2).copied().collect();
        let sub_accs: Vec<f64> = sub
            .iter()
            .map(|&m| zoo.fine_tune(m, d, tg_zoo::FineTuneMethod::Full))
            .collect();
        let logme_scores: Vec<f64> = sub
            .iter()
            .map(|&m| {
                let fp = zoo.forward_pass(m, d);
                log_me(&fp.features, &fp.labels, fp.num_classes)
            })
            .collect();
        let r = tg_linalg::stats::pearson(&sub_accs, &logme_scores).unwrap();
        assert!(r > 0.2, "LogME should carry signal, r={r}");
        assert!(r < 0.98, "LogME must not be a perfect oracle, r={r}");
        // Keep accs used (full list sanity).
        assert_eq!(accs.len(), models.len());
    }
}
