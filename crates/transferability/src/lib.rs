//! Transferability estimators: LogME, LEEP, NCE, PARC, TransRate, H-score,
//! GBC.
//!
//! These are the feature-based model-selection baselines of the paper
//! (§II-A, "feature-based model selection"). Each consumes the result of a
//! forward pass of a candidate model over the target dataset — features
//! and/or source-head predictions plus the target labels — and returns a
//! scalar score where **higher means more transferable**.
//!
//! Every estimator is reachable through the unified, fallible [`Scorer`]
//! trait: construct a validated [`Labels`] view once, then call
//! `score(&features, &labels)`, which returns [`ScoreError`] instead of
//! panicking on bad input. The historical free functions ([`log_me`],
//! [`leep`], …) remain as `#[deprecated]` panicking shims.
//!
//! * [`LogMe`] — the paper's primary baseline and the source of the
//!   transferability edges in the TransferGraph graph (§V-A3). Runs the
//!   batched `Z = YᵀU` kernel by default; [`LogMe::scalar`] selects the
//!   bit-identical per-class reference.
//! * [`Leep`], [`Nce`] — pseudo-label transfer estimators (their `features`
//!   argument is the source-head probability matrix).
//! * [`Parc`], [`TransRate`], [`HScore`], [`Gbc`] — representation-analysis
//!   estimators, implemented for completeness of the related-work table.
//!
//! # Example
//!
//! ```
//! use tg_zoo::{ModelZoo, ZooConfig, Modality};
//! use tg_transfer::{Labels, Leep, LogMe, Scorer};
//!
//! let zoo = ModelZoo::build(&ZooConfig::small(3));
//! let m = zoo.models_of(Modality::Image)[0];
//! let d = zoo.targets_of(Modality::Image)[0];
//! let fp = zoo.forward_pass(m, d);
//! let labels = Labels::new(&fp.labels, fp.num_classes)?;
//! let s1 = LogMe::batched().score(&fp.features, &labels)?;
//! let s2 = Leep.score(&fp.source_probs, &labels)?;
//! assert!(s1.is_finite() && s2.is_finite());
//! # Ok::<(), tg_transfer::ScoreError>(())
//! ```

mod gbc;
mod hscore;
mod leep_nce;
mod logme;
mod parc;
mod scorer;
mod transrate;

#[allow(deprecated)]
pub use gbc::gbc;
#[allow(deprecated)]
pub use hscore::h_score;
#[allow(deprecated)]
pub use leep_nce::{leep, nce};
#[allow(deprecated)]
pub use logme::log_me;
#[allow(deprecated)]
pub use parc::parc;
pub use scorer::{
    DecompArm, DecompPath, Gbc, HScore, JacobiConfig, Labels, Leep, LogMe, LogMeKernel,
    LogMeReport, Nce, Parc, ScoreError, Scorer, TransRate,
};
#[allow(deprecated)]
pub use transrate::trans_rate;

use tg_zoo::ForwardPass;

/// The estimators this crate implements, for uniform dispatch in
/// experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Log maximum evidence (You et al., ICML 2021).
    LogMe,
    /// Log expected empirical prediction (Nguyen et al., ICML 2020).
    Leep,
    /// Negative conditional entropy (Tran et al., ICCV 2019).
    Nce,
    /// Pairwise annotation representation comparison (Bolya et al., 2021).
    Parc,
    /// TransRate (Huang et al., ICML 2022).
    TransRate,
    /// H-score (Bao et al., 2019).
    HScore,
    /// Gaussian Bhattacharyya Coefficient (Pándy et al., CVPR 2022).
    Gbc,
}

impl Estimator {
    /// All estimators.
    pub const ALL: [Estimator; 7] = [
        Estimator::LogMe,
        Estimator::Leep,
        Estimator::Nce,
        Estimator::Parc,
        Estimator::TransRate,
        Estimator::HScore,
        Estimator::Gbc,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.scorer().name()
    }

    /// The [`Scorer`] implementation behind this estimator (LogME uses the
    /// batched kernel).
    pub fn scorer(&self) -> &'static dyn Scorer {
        const BATCHED_LOGME: LogMe = LogMe::batched();
        match self {
            Estimator::LogMe => &BATCHED_LOGME,
            Estimator::Leep => &Leep,
            Estimator::Nce => &Nce,
            Estimator::Parc => &Parc,
            Estimator::TransRate => &TransRate,
            Estimator::HScore => &HScore,
            Estimator::Gbc => &Gbc,
        }
    }

    /// Scores one forward pass, routing the right input matrix (features
    /// for feature-based estimators, source-head probabilities for
    /// [`Estimator::Leep`]/[`Estimator::Nce`]) into [`Scorer::score`].
    pub fn score(&self, fp: &ForwardPass) -> Result<f64, ScoreError> {
        let labels = Labels::new(&fp.labels, fp.num_classes)?;
        let features = match self {
            Estimator::Leep | Estimator::Nce => &fp.source_probs,
            _ => &fp.features,
        };
        self.scorer().score(features, &labels)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use tg_linalg::Matrix;
    use tg_rng::Rng;

    /// Synthetic class-structured features: `sep` controls how separable the
    /// classes are.
    pub fn clustered_features(
        rng: &mut Rng,
        n: usize,
        dim: usize,
        classes: usize,
        sep: f64,
    ) -> (Matrix, Vec<usize>) {
        let protos: Vec<Vec<f64>> = (0..classes)
            .map(|_| {
                let v = rng.normal_vec(dim, 0.0, 1.0);
                let norm = tg_linalg::matrix::norm(&v).max(1e-12);
                v.into_iter().map(|x| x / norm).collect()
            })
            .collect();
        let mut f = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            labels.push(c);
            for j in 0..dim {
                f.set(i, j, sep * protos[c][j] + rng.normal(0.0, 1.0));
            }
        }
        (f, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_zoo::{Modality, ModelZoo, ZooConfig};

    #[test]
    fn all_estimators_finite_on_zoo_forward_pass() {
        let zoo = ModelZoo::build(&ZooConfig::small(13));
        let m = zoo.models_of(Modality::Image)[1];
        let d = zoo.targets_of(Modality::Image)[2];
        let fp = zoo.forward_pass(m, d);
        for est in Estimator::ALL {
            let s = est.score(&fp).unwrap();
            assert!(s.is_finite(), "{} returned {s}", est.name());
        }
    }

    #[test]
    fn estimator_dispatch_matches_direct_scorers() {
        // `Estimator::score` must route the right matrix into each scorer.
        let zoo = ModelZoo::build(&ZooConfig::small(7));
        let m = zoo.models_of(Modality::Image)[0];
        let d = zoo.targets_of(Modality::Image)[1];
        let fp = zoo.forward_pass(m, d);
        let labels = Labels::new(&fp.labels, fp.num_classes).unwrap();
        let direct = LogMe::batched().score(&fp.features, &labels).unwrap();
        assert_eq!(
            Estimator::LogMe.score(&fp).unwrap().to_bits(),
            direct.to_bits()
        );
        let direct = Leep.score(&fp.source_probs, &labels).unwrap();
        assert_eq!(
            Estimator::Leep.score(&fp).unwrap().to_bits(),
            direct.to_bits()
        );
    }

    #[test]
    fn estimators_correlate_with_ground_truth_across_models() {
        // The core sanity property of the whole simulation: feature-based
        // scores must positively correlate with fine-tune accuracy, but not
        // perfectly (they are a noisy channel).
        let zoo = ModelZoo::build(&ZooConfig::paper(17));
        let d = zoo.dataset_by_name("pets");
        let models = zoo.models_of(Modality::Image);
        let accs: Vec<f64> = models
            .iter()
            .map(|&m| zoo.fine_tune(m, d, tg_zoo::FineTuneMethod::Full))
            .collect();
        let sub: Vec<_> = models.iter().step_by(2).copied().collect();
        let sub_accs: Vec<f64> = sub
            .iter()
            .map(|&m| zoo.fine_tune(m, d, tg_zoo::FineTuneMethod::Full))
            .collect();
        let logme = LogMe::default();
        let logme_scores: Vec<f64> = sub
            .iter()
            .map(|&m| {
                let fp = zoo.forward_pass(m, d);
                let labels = Labels::new(&fp.labels, fp.num_classes).unwrap();
                logme.score(&fp.features, &labels).unwrap()
            })
            .collect();
        let r = tg_linalg::stats::pearson(&sub_accs, &logme_scores).unwrap();
        assert!(r > 0.2, "LogME should carry signal, r={r}");
        assert!(r < 0.98, "LogME must not be a perfect oracle, r={r}");
        // Keep accs used (full list sanity).
        assert_eq!(accs.len(), models.len());
    }
}
