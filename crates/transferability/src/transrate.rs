//! TransRate: frustratingly easy transferability estimation (Huang et al.,
//! ICML 2022).
//!
//! TransRate is the mutual information between features and labels measured
//! through coding rate: `R(Z, ε) − R(Z|Y, ε)`, where
//! `R(Z, ε) = ½ log det(I + d/(nε²) ZᵀZ)` for mean-centred features `Z`.

use tg_linalg::decomp::{cholesky, DecompError};
use tg_linalg::Matrix;

use crate::scorer::{shim_error, Labels, ScoreError, Scorer, TransRate};

/// Distortion parameter ε of the coding rate. The reference implementation
/// defaults to values in this ballpark; results are insensitive within an
/// order of magnitude.
const EPSILON: f64 = 1.0;

/// Coding rate of the (already centred) rows in `z`.
///
/// `I + cZᵀZ` with `c > 0` is SPD (identity plus a PSD Gram matrix), so a
/// Cholesky failure is never expected; it propagates as an error rather
/// than a panic.
fn coding_rate(z: &Matrix, eps: f64) -> Result<f64, DecompError> {
    let n = z.rows();
    let d = z.cols();
    if n == 0 {
        return Ok(0.0);
    }
    let scale = d as f64 / (n as f64 * eps * eps);
    let gram = z.gram(); // d×d
    let a = Matrix::from_fn(d, d, |i, j| {
        let idm = if i == j { 1.0 } else { 0.0 };
        idm + scale * gram.get(i, j)
    });
    // log det via Cholesky.
    let l = cholesky(&a)?;
    let mut logdet = 0.0;
    for i in 0..d {
        logdet += l.get(i, i).ln();
    }
    Ok(logdet) // = ½ log det(A) since det(A) = det(L)², so Σ ln L_ii = ½ ln det A
}

/// Fallible TransRate implementation behind [`crate::TransRate`].
pub(crate) fn trans_rate_impl(features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
    let n = features.rows();
    labels.check_rows(n)?;
    if n == 0 {
        return Err(ScoreError::TooFewSamples { rows: 0, needed: 1 });
    }

    let z = features.center_columns();
    let whole = coding_rate(&z, EPSILON)?;

    let mut conditional = 0.0;
    for c in 0..labels.num_classes() {
        let rows: Vec<usize> = labels
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| i)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let sub = Matrix::from_fn(rows.len(), z.cols(), |r, col| z.get(rows[r], col));
        conditional += (rows.len() as f64 / n as f64) * coding_rate(&sub, EPSILON)?;
    }
    Ok(whole - conditional)
}

/// TransRate score. Higher is better.
#[deprecated(note = "use `TransRate` through the `Scorer` trait")]
pub fn trans_rate(features: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let scored =
        Labels::new(labels, num_classes).and_then(|labels| TransRate.score(features, &labels));
    assert!(scored.is_ok(), "trans_rate: {}", shim_error(&scored));
    scored.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_features;
    use tg_rng::Rng;

    fn trans_rate(f: &Matrix, y: &[usize], c: usize) -> f64 {
        TransRate.score(f, &Labels::new(y, c).unwrap()).unwrap()
    }

    #[test]
    fn separable_beats_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let (f_good, y) = clustered_features(&mut rng, 300, 10, 4, 3.0);
        let (f_bad, _) = clustered_features(&mut rng, 300, 10, 4, 0.0);
        assert!(trans_rate(&f_good, &y, 4) > trans_rate(&f_bad, &y, 4));
    }

    #[test]
    fn nonnegative_up_to_noise() {
        // R(Z) ≥ Σ w_c R(Z_c) approximately for class-structured data;
        // allow small negative slack from sampling noise.
        let mut rng = Rng::seed_from_u64(2);
        let (f, y) = clustered_features(&mut rng, 240, 8, 3, 1.0);
        assert!(trans_rate(&f, &y, 3) > -0.5);
    }

    #[test]
    fn monotone_in_separation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut last = f64::NEG_INFINITY;
        for sep in [0.0, 1.5, 3.0] {
            let (f, y) = clustered_features(&mut rng, 300, 8, 3, sep);
            let s = trans_rate(&f, &y, 3);
            assert!(s > last, "sep {sep}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn coding_rate_zero_for_zero_features() {
        let z = Matrix::zeros(50, 6);
        assert!(coding_rate(&z, 1.0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn handles_missing_classes() {
        // num_classes larger than observed labels.
        let mut rng = Rng::seed_from_u64(4);
        let (f, y) = clustered_features(&mut rng, 90, 6, 3, 2.0);
        assert!(trans_rate(&f, &y, 10).is_finite());
    }

    #[test]
    fn empty_input_is_an_error() {
        let f = Matrix::zeros(0, 4);
        let labels = Labels::new(&[], 2).unwrap();
        assert_eq!(
            TransRate.score(&f, &labels),
            Err(ScoreError::TooFewSamples { rows: 0, needed: 1 })
        );
    }
}
