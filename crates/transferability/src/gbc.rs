//! GBC: Gaussian Bhattacharyya Coefficient (Pándy et al., CVPR 2022).
//!
//! Models each class as a diagonal Gaussian in feature space and scores
//! transferability as `−Σ_{c≠c'} exp(−BD(c, c'))` — the negated sum of
//! pairwise Bhattacharyya overlaps. Well-separated classes ⇒ small overlap
//! ⇒ higher (less negative) score.

use tg_linalg::Matrix;

use crate::scorer::{shim_error, Gbc, Labels, ScoreError, Scorer};

/// Variance floor to keep the Bhattacharyya distance defined for
//  near-degenerate dimensions.
const VAR_FLOOR: f64 = 1e-6;

/// Fallible GBC implementation behind [`crate::Gbc`].
pub(crate) fn gbc_impl(features: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
    let n = features.rows();
    labels.check_rows(n)?;
    if n == 0 {
        return Err(ScoreError::TooFewSamples { rows: 0, needed: 1 });
    }
    let d = features.cols();
    let num_classes = labels.num_classes();
    let label_slice = labels.as_slice();

    // Per-class diagonal Gaussians.
    let mut means = vec![vec![0.0; d]; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (i, &c) in label_slice.iter().enumerate() {
        for j in 0..d {
            means[c][j] += features.get(i, j);
        }
        counts[c] += 1;
    }
    for (m, &cnt) in means.iter_mut().zip(&counts) {
        if cnt > 0 {
            for x in m.iter_mut() {
                *x /= cnt as f64;
            }
        }
    }
    let mut vars = vec![vec![VAR_FLOOR; d]; num_classes];
    for (i, &c) in label_slice.iter().enumerate() {
        for j in 0..d {
            let diff = features.get(i, j) - means[c][j];
            vars[c][j] += diff * diff;
        }
    }
    for (v, &cnt) in vars.iter_mut().zip(&counts) {
        if cnt > 1 {
            for x in v.iter_mut() {
                *x /= (cnt - 1) as f64;
            }
        }
    }

    // Pairwise Bhattacharyya distance for diagonal Gaussians:
    // BD = 1/8 Σ_j (μ1−μ2)²/σ̄² + 1/2 Σ_j ln(σ̄²/√(σ1² σ2²)),
    // σ̄² = (σ1² + σ2²)/2.
    let mut score = 0.0;
    for a in 0..num_classes {
        if counts[a] == 0 {
            continue;
        }
        for b in (a + 1)..num_classes {
            if counts[b] == 0 {
                continue;
            }
            let mut bd = 0.0;
            for j in 0..d {
                let va = vars[a][j].max(VAR_FLOOR);
                let vb = vars[b][j].max(VAR_FLOOR);
                let vm = (va + vb) / 2.0;
                let dm = means[a][j] - means[b][j];
                bd += 0.125 * dm * dm / vm + 0.5 * (vm / (va * vb).sqrt()).ln();
            }
            // Bhattacharyya coefficient = exp(−BD) ∈ (0, 1].
            score -= (-bd).exp();
        }
    }
    Ok(score)
}

/// GBC score of features against labels. Higher is better.
#[deprecated(note = "use `Gbc` through the `Scorer` trait")]
pub fn gbc(features: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let scored = Labels::new(labels, num_classes).and_then(|labels| Gbc.score(features, &labels));
    assert!(scored.is_ok(), "gbc: {}", shim_error(&scored));
    scored.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_features;
    use tg_rng::Rng;

    fn gbc(f: &Matrix, y: &[usize], c: usize) -> f64 {
        Gbc.score(f, &Labels::new(y, c).unwrap()).unwrap()
    }

    #[test]
    fn separable_beats_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let (f_good, y) = clustered_features(&mut rng, 240, 10, 4, 3.0);
        let (f_bad, _) = clustered_features(&mut rng, 240, 10, 4, 0.0);
        assert!(gbc(&f_good, &y, 4) > gbc(&f_bad, &y, 4));
    }

    #[test]
    fn bounded_by_pair_count() {
        // Score ∈ [−C(C,2), 0].
        let mut rng = Rng::seed_from_u64(2);
        let (f, y) = clustered_features(&mut rng, 200, 8, 5, 1.0);
        let s = gbc(&f, &y, 5);
        assert!(s <= 0.0);
        assert!(s >= -10.0); // C(5,2) = 10
    }

    #[test]
    fn monotone_in_separation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut last = f64::NEG_INFINITY;
        for sep in [0.0, 1.5, 3.0, 6.0] {
            let (f, y) = clustered_features(&mut rng, 300, 8, 3, sep);
            let s = gbc(&f, &y, 3);
            assert!(s > last, "sep {sep}: {s} <= {last}");
            last = s;
        }
    }

    #[test]
    fn identical_classes_fully_overlap() {
        // All samples from one cluster but two labels: coefficient ≈ 1 per
        // pair → score ≈ −1.
        let mut rng = Rng::seed_from_u64(4);
        let (f, _) = clustered_features(&mut rng, 200, 6, 1, 2.0);
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let s = gbc(&f, &labels, 2);
        assert!(s < -0.8, "overlapping classes should score near −1: {s}");
    }

    #[test]
    fn handles_missing_classes() {
        let mut rng = Rng::seed_from_u64(5);
        let (f, y) = clustered_features(&mut rng, 90, 6, 3, 2.0);
        assert!(gbc(&f, &y, 10).is_finite());
    }

    #[test]
    fn label_count_mismatch_is_an_error() {
        let f = Matrix::zeros(5, 3);
        let labels = Labels::new(&[0, 1], 2).unwrap();
        assert_eq!(
            Gbc.score(&f, &labels),
            Err(ScoreError::LabelCountMismatch { labels: 2, rows: 5 })
        );
    }
}
