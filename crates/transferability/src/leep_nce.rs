//! LEEP (Nguyen et al., ICML 2020) and NCE (Tran et al., ICCV 2019):
//! transferability from source-head predictions.

use tg_linalg::Matrix;

use crate::scorer::{shim_error, Labels, Leep, ScoreError, Scorer};

/// Fallible LEEP implementation behind [`crate::Leep`]: `source_probs` is
/// the `n × Z` source-head soft-prediction matrix (rows sum to 1).
pub(crate) fn leep_impl(source_probs: &Matrix, labels: &Labels) -> Result<f64, ScoreError> {
    let n = source_probs.rows();
    labels.check_rows(n)?;
    if n == 0 {
        return Err(ScoreError::TooFewSamples { rows: 0, needed: 1 });
    }
    let num_classes = labels.num_classes();
    let z_dim = source_probs.cols();

    // Empirical joint P(y, z) and marginal P(z).
    let mut joint = Matrix::zeros(num_classes, z_dim);
    for (i, &y) in labels.as_slice().iter().enumerate() {
        for z in 0..z_dim {
            joint.set(y, z, joint.get(y, z) + source_probs.get(i, z) / n as f64);
        }
    }
    let mut pz = vec![0.0; z_dim];
    for z in 0..z_dim {
        for y in 0..num_classes {
            pz[z] += joint.get(y, z);
        }
    }
    // Conditional P(y | z).
    let cond = Matrix::from_fn(num_classes, z_dim, |y, z| {
        if pz[z] > 1e-12 {
            joint.get(y, z) / pz[z]
        } else {
            1.0 / num_classes as f64
        }
    });

    // Mean log-likelihood.
    let mut total = 0.0;
    for (i, &y) in labels.as_slice().iter().enumerate() {
        let mut p = 0.0;
        for z in 0..z_dim {
            p += cond.get(y, z) * source_probs.get(i, z);
        }
        total += p.max(1e-12).ln();
    }
    Ok(total / n as f64)
}

/// Fallible NCE implementation shared by [`crate::Nce`] (which derives the
/// hard pseudo-labels by argmax) and the deprecated [`nce`] shim (which
/// takes them directly).
pub(crate) fn nce_impl(
    source_labels: &[usize],
    labels: &Labels,
    num_source_classes: usize,
) -> Result<f64, ScoreError> {
    let n = labels.len();
    if source_labels.len() != n {
        return Err(ScoreError::LabelCountMismatch {
            labels: n,
            rows: source_labels.len(),
        });
    }
    if n == 0 {
        return Err(ScoreError::TooFewSamples { rows: 0, needed: 1 });
    }
    for (index, &z) in source_labels.iter().enumerate() {
        if z >= num_source_classes {
            return Err(ScoreError::LabelOutOfRange {
                index,
                label: z,
                num_classes: num_source_classes,
            });
        }
    }
    let num_classes = labels.num_classes();

    let mut joint = Matrix::zeros(num_classes, num_source_classes);
    for (&z, &y) in source_labels.iter().zip(labels.as_slice()) {
        joint.set(y, z, joint.get(y, z) + 1.0 / n as f64);
    }
    let mut pz = vec![0.0; num_source_classes];
    for z in 0..num_source_classes {
        for y in 0..num_classes {
            pz[z] += joint.get(y, z);
        }
    }
    // −H(Y|Z) = Σ_{y,z} P(y,z) log(P(y,z)/P(z)).
    let mut nce = 0.0;
    for y in 0..num_classes {
        for z in 0..num_source_classes {
            let pyz = joint.get(y, z);
            if pyz > 0.0 && pz[z] > 0.0 {
                nce += pyz * (pyz / pz[z]).ln();
            }
        }
    }
    Ok(nce)
}

/// LEEP: log expected empirical prediction.
///
/// Given the source-head soft predictions `θ` (`n × Z`, rows sum to 1) and
/// target labels `y`, LEEP builds the empirical joint `P(y, z)`, forms the
/// conditional `P(y | z)`, and scores the mean log-likelihood of the target
/// labels under the composed classifier `x ↦ Σ_z P(y|z) θ(x)_z`.
#[deprecated(note = "use `Leep` through the `Scorer` trait")]
pub fn leep(source_probs: &Matrix, labels: &[usize], num_classes: usize) -> f64 {
    let scored =
        Labels::new(labels, num_classes).and_then(|labels| Leep.score(source_probs, &labels));
    assert!(scored.is_ok(), "leep: {}", shim_error(&scored));
    scored.unwrap_or_default()
}

/// NCE: negative conditional entropy `−H(Y | Z)` of target labels given
/// hard source pseudo-labels. Higher (closer to 0) is better.
#[deprecated(note = "use `Nce` through the `Scorer` trait (it derives the argmax pseudo-labels)")]
pub fn nce(
    source_labels: &[usize],
    labels: &[usize],
    num_source_classes: usize,
    num_classes: usize,
) -> f64 {
    let scored = Labels::new(labels, num_classes)
        .and_then(|labels| nce_impl(source_labels, &labels, num_source_classes));
    assert!(scored.is_ok(), "nce: {}", shim_error(&scored));
    scored.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::Nce;
    use tg_rng::Rng;

    fn leep(p: &Matrix, y: &[usize], c: usize) -> f64 {
        Leep.score(p, &Labels::new(y, c).unwrap()).unwrap()
    }

    fn nce(zs: &[usize], y: &[usize], zc: usize, c: usize) -> f64 {
        nce_impl(zs, &Labels::new(y, c).unwrap(), zc).unwrap()
    }

    /// Source predictions that reveal the target label with probability
    /// `informativeness`.
    fn synthetic(
        rng: &mut Rng,
        n: usize,
        classes: usize,
        z_dim: usize,
        informativeness: f64,
    ) -> (Matrix, Vec<usize>) {
        let mut probs = Matrix::zeros(n, z_dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let y = i % classes;
            labels.push(y);
            let peak = y % z_dim;
            for z in 0..z_dim {
                let base = if z == peak {
                    informativeness
                } else {
                    (1.0 - informativeness) / (z_dim - 1) as f64
                };
                probs.set(i, z, (base * rng.uniform_range(0.8, 1.2)).max(1e-9));
            }
            let s: f64 = probs.row(i).iter().sum();
            for z in 0..z_dim {
                probs.set(i, z, probs.get(i, z) / s);
            }
        }
        (probs, labels)
    }

    #[test]
    fn leep_prefers_informative_source() {
        let mut rng = Rng::seed_from_u64(1);
        let (p_good, y) = synthetic(&mut rng, 300, 3, 6, 0.9);
        let (p_bad, _) = synthetic(&mut rng, 300, 3, 6, 1.0 / 6.0);
        assert!(leep(&p_good, &y, 3) > leep(&p_bad, &y, 3));
    }

    #[test]
    fn leep_upper_bound_is_zero() {
        // Log-likelihood of a probability is ≤ 0.
        let mut rng = Rng::seed_from_u64(2);
        let (p, y) = synthetic(&mut rng, 200, 4, 8, 0.7);
        assert!(leep(&p, &y, 4) <= 0.0);
    }

    #[test]
    fn leep_perfect_predictor_near_zero() {
        // Deterministic one-to-one mapping: LEEP ≈ log 1 = 0.
        let n = 120;
        let classes = 4;
        let mut probs = Matrix::zeros(n, classes);
        let mut labels = Vec::new();
        for i in 0..n {
            let y = i % classes;
            labels.push(y);
            probs.set(i, y, 1.0);
        }
        let s = leep(&probs, &labels, classes);
        assert!(s > -1e-6, "perfect LEEP should be ~0, got {s}");
    }

    #[test]
    fn nce_perfect_alignment_is_zero() {
        // z == y: H(Y|Z) = 0, NCE = 0.
        let labels: Vec<usize> = (0..100).map(|i| i % 5).collect();
        let s = nce(&labels.clone(), &labels, 5, 5);
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn nce_independent_labels_are_negative() {
        // z carries no information about y.
        let labels: Vec<usize> = (0..300).map(|i| i % 3).collect();
        let zs: Vec<usize> = (0..300).map(|i| (i / 3) % 4).collect();
        let s = nce(&zs, &labels, 4, 3);
        // H(Y|Z) ≈ H(Y) = ln 3.
        assert!((s + (3.0f64).ln()).abs() < 0.05, "got {s}");
    }

    #[test]
    fn nce_monotone_in_alignment() {
        let mut rng = Rng::seed_from_u64(3);
        let labels: Vec<usize> = (0..400).map(|i| i % 4).collect();
        let score_at = |p_correct: f64, rng: &mut Rng| {
            let zs: Vec<usize> = labels
                .iter()
                .map(|&y| {
                    if rng.bernoulli(p_correct) {
                        y
                    } else {
                        rng.index(4)
                    }
                })
                .collect();
            nce(&zs, &labels, 4, 4)
        };
        let low = score_at(0.2, &mut rng);
        let high = score_at(0.9, &mut rng);
        assert!(high > low);
    }

    #[test]
    fn nce_scorer_matches_argmax_pseudo_labels() {
        // Scoring the soft predictions through the trait must agree with
        // feeding the hard argmax labels to nce_impl directly.
        let mut rng = Rng::seed_from_u64(4);
        let (p, y) = synthetic(&mut rng, 200, 3, 5, 0.8);
        let labels = Labels::new(&y, 3).unwrap();
        let via_trait = Nce.score(&p, &labels).unwrap();
        let hard: Vec<usize> = (0..p.rows())
            .map(|r| {
                p.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        let direct = nce_impl(&hard, &labels, 5).unwrap();
        assert_eq!(via_trait.to_bits(), direct.to_bits());
    }

    #[test]
    fn nce_out_of_range_source_label_is_an_error() {
        let labels = Labels::new(&[0, 1, 0], 2).unwrap();
        assert_eq!(
            nce_impl(&[0, 7, 1], &labels, 4),
            Err(ScoreError::LabelOutOfRange {
                index: 1,
                label: 7,
                num_classes: 4
            })
        );
    }
}
