//! Ridge-regularised linear regression via the normal equations.

use crate::Regressor;
use tg_linalg::decomp::cholesky_solve;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// Linear regression with L2 regularisation.
///
/// Features are standardised internally (zero mean, unit variance), which
/// makes one ridge strength work across the heterogeneous feature blocks
/// (binary one-hots next to 128-d embeddings). The intercept is recovered
/// from the means, not penalised.
#[derive(Clone, Debug)]
pub struct RidgeRegression {
    /// Ridge strength applied after standardisation.
    pub lambda: f64,
    weights: Option<Vec<f64>>,
    intercept: f64,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Default for RidgeRegression {
    fn default() -> Self {
        RidgeRegression {
            lambda: 1e-2,
            weights: None,
            intercept: 0.0,
            means: Vec::new(),
            stds: Vec::new(),
        }
    }
}

impl RidgeRegression {
    /// Ridge regression with an explicit regularisation strength.
    pub fn new(lambda: f64) -> Self {
        RidgeRegression {
            lambda,
            ..Default::default()
        }
    }

    /// Fitted coefficient vector in the standardised space (None before
    /// `fit`).
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for RidgeRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64], _rng: &mut Rng) {
        let (n, f) = x.shape();
        assert_eq!(n, y.len(), "RidgeRegression::fit: row/target mismatch");
        assert!(n > 0, "RidgeRegression::fit: empty input");

        // Standardise.
        self.means = x.col_means();
        self.stds = (0..f)
            .map(|j| {
                let col: Vec<f64> = (0..n).map(|i| x.get(i, j)).collect();
                let s = tg_linalg::stats::std_dev(&col);
                if s > 1e-12 {
                    s
                } else {
                    1.0 // constant column: weight will be 0 anyway
                }
            })
            .collect();
        let z = Matrix::from_fn(n, f, |i, j| (x.get(i, j) - self.means[j]) / self.stds[j]);
        let y_mean = tg_linalg::stats::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // (ZᵀZ + λ n I) w = Zᵀ yc — λ scaled by n so it is per-sample.
        let mut a = z.gram();
        let reg = self.lambda * n as f64;
        for j in 0..f {
            a.set(j, j, a.get(j, j) + reg);
        }
        let b = z.transpose().matvec(&yc);
        // tg-check: allow(tg01, reason = "ZᵀZ + λnI with λ > 0 is symmetric positive definite by construction")
        let w = cholesky_solve(&a, &b).expect("RidgeRegression: normal equations not SPD");
        self.weights = Some(w);
        self.intercept = y_mean;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self
            .weights
            .as_ref()
            // tg-check: allow(tg01, reason = "documented Predictor contract: fit() precedes predict()")
            .expect("RidgeRegression::predict called before fit");
        assert_eq!(
            x.cols(),
            w.len(),
            "RidgeRegression::predict: feature mismatch"
        );
        (0..x.rows())
            .map(|i| {
                let mut s = self.intercept;
                for j in 0..w.len() {
                    s += w[j] * (x.get(i, j) - self.means[j]) / self.stds[j];
                }
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_relationship() {
        let mut rng = Rng::seed_from_u64(1);
        let n = 200;
        let x = Matrix::from_fn(n, 3, |_, _| rng.normal(0.0, 1.0));
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * x.get(i, 0) - 1.0 * x.get(i, 1) + 0.5 * x.get(i, 2) + 3.0)
            .collect();
        let mut lr = RidgeRegression::new(1e-6);
        lr.fit(&x, &y, &mut rng);
        let pred = lr.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3, "pred {p} true {t}");
        }
    }

    #[test]
    fn handles_constant_columns() {
        let mut rng = Rng::seed_from_u64(2);
        let n = 50;
        let x = Matrix::from_fn(n, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let y: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
        let mut lr = RidgeRegression::default();
        lr.fit(&x, &y, &mut rng);
        let pred = lr.predict(&x);
        assert!((pred[10] - 20.0).abs() < 0.5);
    }

    #[test]
    fn ridge_shrinks_collinear_weights() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 100;
        // Two identical columns.
        let base: Vec<f64> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
        let x = Matrix::from_fn(n, 2, |i, _| base[i]);
        let y: Vec<f64> = base.iter().map(|v| 4.0 * v).collect();
        let mut lr = RidgeRegression::new(1e-2);
        lr.fit(&x, &y, &mut rng);
        let w = lr.coefficients().unwrap();
        // Weight splits roughly evenly between the duplicates.
        assert!((w[0] - w[1]).abs() < 1e-6);
        let pred = lr.predict(&x);
        assert!((pred[0] - y[0]).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let lr = RidgeRegression::default();
        lr.predict(&Matrix::zeros(1, 1));
    }

    #[test]
    fn intercept_only_for_constant_target() {
        let mut rng = Rng::seed_from_u64(4);
        let x = Matrix::from_fn(20, 2, |_, _| rng.normal(0.0, 1.0));
        let y = vec![7.0; 20];
        let mut lr = RidgeRegression::default();
        lr.fit(&x, &y, &mut rng);
        let pred = lr.predict(&x);
        assert!(pred.iter().all(|p| (p - 7.0).abs() < 1e-6));
    }
}
