//! XGBoost-style gradient-boosted trees (Chen & Guestrin, KDD 2016) with
//! second-order leaf weights and histogram split finding.
//!
//! The paper configures 500 trees with maximum depth 5 (§VI-C). With the
//! squared-error objective the gradients are `g = ŷ − y`, hessians `h = 1`;
//! gains and leaf weights use XGBoost's regularised formulas:
//!
//! * gain = ½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
//! * leaf weight = −G/(H+λ), scaled by the learning rate.
//!
//! Split candidates come from per-feature quantile histograms (XGBoost's
//! `hist` algorithm), which keeps a 500-tree fit over a few hundred features
//! fast.

use crate::Regressor;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// GBDT hyperparameters.
#[derive(Clone, Debug)]
pub struct Gbdt {
    /// Boosting rounds (trees).
    pub n_rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Learning rate (shrinkage).
    pub eta: f64,
    /// L2 regularisation on leaf weights (XGBoost λ).
    pub lambda: f64,
    /// Minimum gain to split (XGBoost γ).
    pub gamma: f64,
    /// Minimum hessian sum per child (≈ min samples for squared error).
    pub min_child_weight: f64,
    /// Histogram bins per feature.
    pub n_bins: usize,
    /// Fraction of features sampled per tree.
    pub colsample_bytree: f64,
    base_score: f64,
    trees: Vec<GbdtTree>,
    /// Bin edges per feature, frozen at fit time.
    bin_edges: Vec<Vec<f64>>,
}

impl Default for Gbdt {
    fn default() -> Self {
        Gbdt {
            n_rounds: 500,
            max_depth: 5,
            eta: 0.05,
            lambda: 2.0,
            gamma: 0.0,
            min_child_weight: 4.0,
            n_bins: 32,
            colsample_bytree: 0.7,
            base_score: 0.0,
            trees: Vec::new(),
            bin_edges: Vec::new(),
        }
    }
}

impl Gbdt {
    /// GBDT with explicit rounds/depth (other knobs at defaults).
    pub fn new(n_rounds: usize, max_depth: usize) -> Self {
        Gbdt {
            n_rounds,
            max_depth,
            ..Default::default()
        }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance: how often each feature was chosen as
    /// a split across all trees, normalised to sum to 1. Zero vector before
    /// `fit`.
    pub fn feature_importance(&self) -> Vec<f64> {
        let f = self.bin_edges.len();
        let mut counts = vec![0.0f64; f];
        for tree in &self.trees {
            for node in &tree.nodes {
                if let GNode::Split { feature, .. } = node {
                    counts[*feature] += 1.0;
                }
            }
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }
}

#[derive(Clone, Debug)]
enum GNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        /// Split on bin index: `bin <= threshold_bin` goes left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct GbdtTree {
    nodes: Vec<GNode>,
}

impl GbdtTree {
    fn predict_row(&self, x: &Matrix, row: usize) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                GNode::Leaf { weight } => return *weight,
                GNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x.get(row, *feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Quantile bin edges for one feature (at most `n_bins − 1` edges).
fn quantile_edges(values: &mut Vec<f64>, n_bins: usize) -> Vec<f64> {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.dedup();
    if values.len() <= n_bins {
        // Few distinct values: midpoints between consecutive ones.
        return values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    }
    let mut edges = Vec::with_capacity(n_bins - 1);
    for b in 1..n_bins {
        let idx = b * values.len() / n_bins;
        let e = (values[idx - 1] + values[idx]) / 2.0;
        if edges.last().is_none_or(|&l| e > l) {
            edges.push(e);
        }
    }
    edges
}

/// Bin index of a value given edges (first bin whose edge exceeds it).
#[inline]
fn bin_of(edges: &[f64], v: f64) -> usize {
    edges.partition_point(|&e| e < v)
}

impl Regressor for Gbdt {
    fn name(&self) -> &'static str {
        "XGB"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64], rng: &mut Rng) {
        let (n, f) = x.shape();
        assert_eq!(n, y.len(), "Gbdt::fit: row/target mismatch");
        assert!(n > 0, "Gbdt::fit: empty input");

        // Freeze bin edges and pre-bin the training matrix.
        self.bin_edges = (0..f)
            .map(|j| {
                let mut col: Vec<f64> = (0..n).map(|i| x.get(i, j)).collect();
                quantile_edges(&mut col, self.n_bins)
            })
            .collect();
        let bins: Vec<Vec<u16>> = (0..f)
            .map(|j| {
                (0..n)
                    .map(|i| bin_of(&self.bin_edges[j], x.get(i, j)) as u16)
                    .collect()
            })
            .collect();

        self.base_score = tg_linalg::stats::mean(y);
        let mut pred = vec![self.base_score; n];
        self.trees = Vec::with_capacity(self.n_rounds);
        let n_cols = ((f as f64 * self.colsample_bytree).ceil() as usize).clamp(1, f);

        for _round in 0..self.n_rounds {
            // Squared error: g = pred − y, h = 1.
            let grad: Vec<f64> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
            let cols = if n_cols < f {
                rng.sample_indices(f, n_cols)
            } else {
                (0..f).collect()
            };
            let tree = self.build_tree(&bins, &grad, &cols);
            // Update predictions.
            for i in 0..n {
                pred[i] += self.eta * tree_predict_binned(&tree, &bins, i, &self.bin_edges);
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "Gbdt::predict called before fit");
        (0..x.rows())
            .map(|r| {
                let mut s = self.base_score;
                for t in &self.trees {
                    s += self.eta * t.predict_row(x, r);
                }
                s
            })
            .collect()
    }
}

/// Predict a training row through a tree using the pre-binned matrix (bin
/// thresholds are stored as real-valued feature thresholds, so we map the
/// row's bin back through the edges).
fn tree_predict_binned(tree: &GbdtTree, bins: &[Vec<u16>], row: usize, edges: &[Vec<f64>]) -> f64 {
    let mut i = 0;
    loop {
        match &tree.nodes[i] {
            GNode::Leaf { weight } => return *weight,
            GNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                // Recover the bin threshold from the value threshold.
                let bin = bins[*feature][row] as usize;
                let tbin = bin_of(&edges[*feature], *threshold);
                i = if bin <= tbin { *left } else { *right };
            }
        }
    }
}

impl Gbdt {
    /// Builds one tree on gradient/hessian statistics using per-node
    /// histograms. `h = 1` for every sample (squared error), so the hessian
    /// sum is the sample count.
    fn build_tree(&self, bins: &[Vec<u16>], grad: &[f64], cols: &[usize]) -> GbdtTree {
        let n = grad.len();
        let mut tree = GbdtTree { nodes: Vec::new() };
        let rows: Vec<usize> = (0..n).collect();
        self.build_node(&mut tree, bins, grad, cols, rows, 0);
        tree
    }

    fn build_node(
        &self,
        tree: &mut GbdtTree,
        bins: &[Vec<u16>],
        grad: &[f64],
        cols: &[usize],
        rows: Vec<usize>,
        depth: usize,
    ) -> usize {
        let g_total: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h_total = rows.len() as f64;
        let leaf_weight = -g_total / (h_total + self.lambda);
        if depth >= self.max_depth || h_total < 2.0 * self.min_child_weight {
            tree.nodes.push(GNode::Leaf {
                weight: leaf_weight,
            });
            return tree.nodes.len() - 1;
        }

        // Histogram per candidate feature.
        let parent_score = g_total * g_total / (h_total + self.lambda);
        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
        let mut hist_g = vec![0.0f64; self.n_bins + 1];
        let mut hist_h = vec![0.0f64; self.n_bins + 1];
        for &feat in cols {
            hist_g.iter_mut().for_each(|v| *v = 0.0);
            hist_h.iter_mut().for_each(|v| *v = 0.0);
            let fb = &bins[feat];
            for &i in &rows {
                let b = fb[i] as usize;
                hist_g[b] += grad[i];
                hist_h[b] += 1.0;
            }
            let mut gl = 0.0;
            let mut hl = 0.0;
            let max_bin = self.bin_edges[feat].len(); // bins: 0..=max_bin
            for b in 0..max_bin {
                gl += hist_g[b];
                hl += hist_h[b];
                let gr = g_total - gl;
                let hr = h_total - hl;
                if hl < self.min_child_weight || hr < self.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + self.lambda) + gr * gr / (hr + self.lambda) - parent_score)
                    - self.gamma;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((feat, b, gain));
                }
            }
        }

        let Some((feature, bin, _)) = best else {
            tree.nodes.push(GNode::Leaf {
                weight: leaf_weight,
            });
            return tree.nodes.len() - 1;
        };
        // Real-valued threshold: the bin's upper edge.
        let threshold = self.bin_edges[feature][bin];
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&i| (bins[feature][i] as usize) <= bin);

        let idx = tree.nodes.len();
        tree.nodes.push(GNode::Leaf {
            weight: leaf_weight,
        }); // placeholder
        let left = self.build_node(tree, bins, grad, cols, left_rows, depth + 1);
        let right = self.build_node(tree, bins, grad, cols, right_rows, depth + 1);
        tree.nodes[idx] = GNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{friedmanish, r2};

    #[test]
    fn fits_nonlinear_function_well() {
        let mut rng = Rng::seed_from_u64(1);
        let (x, y) = friedmanish(&mut rng, 500);
        let (xt, yt) = friedmanish(&mut rng, 200);
        let mut gb = Gbdt::new(200, 4);
        gb.fit(&x, &y, &mut rng);
        let score = r2(&yt, &gb.predict(&xt));
        assert!(score > 0.8, "r2 {score}");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let mut rng = Rng::seed_from_u64(2);
        let (x, y) = friedmanish(&mut rng, 300);
        let err = |rounds: usize, rng: &mut Rng| {
            let mut gb = Gbdt::new(rounds, 3);
            gb.fit(&x, &y, rng);
            let pred = gb.predict(&x);
            y.iter()
                .zip(&pred)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        let e10 = err(10, &mut rng);
        let e200 = err(200, &mut rng);
        assert!(e200 < e10 / 2.0, "e10 {e10} e200 {e200}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let mut rng = Rng::seed_from_u64(3);
        let x = Matrix::from_fn(60, 4, |_, _| rng.uniform());
        let y = vec![1.25; 60];
        let mut gb = Gbdt::new(20, 3);
        gb.fit(&x, &y, &mut rng);
        assert!(gb.predict(&x).iter().all(|&p| (p - 1.25).abs() < 1e-9));
    }

    #[test]
    fn quantile_edges_monotone() {
        let mut vals: Vec<f64> = (0..1000).map(|i| ((i * 37) % 997) as f64).collect();
        let edges = quantile_edges(&mut vals, 32);
        assert!(edges.len() <= 31);
        for w in edges.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bin_of_boundaries() {
        let edges = vec![1.0, 2.0, 3.0];
        assert_eq!(bin_of(&edges, 0.5), 0);
        assert_eq!(bin_of(&edges, 1.0), 0); // edge value goes left bin
        assert_eq!(bin_of(&edges, 1.5), 1);
        assert_eq!(bin_of(&edges, 9.0), 3);
    }

    #[test]
    fn feature_importance_finds_informative_columns() {
        let mut rng = Rng::seed_from_u64(9);
        // y depends only on column 1 of 6.
        let x = Matrix::from_fn(300, 6, |_, _| rng.uniform());
        let y: Vec<f64> = (0..300).map(|i| 3.0 * x.get(i, 1)).collect();
        let mut gb = Gbdt::new(60, 3);
        gb.fit(&x, &y, &mut rng);
        let imp = gb.feature_importance();
        assert_eq!(imp.len(), 6);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let max_idx = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 1, "importances {imp:?}");
        assert!(imp[1] > 0.5, "importances {imp:?}");
    }

    #[test]
    fn paper_hyperparameters_run() {
        // Smoke-test the full 500×5 configuration on a small input.
        let mut rng = Rng::seed_from_u64(4);
        let (x, y) = friedmanish(&mut rng, 150);
        let mut gb = Gbdt::default();
        gb.fit(&x, &y, &mut rng);
        assert_eq!(gb.num_trees(), 500);
        let pred = gb.predict(&x);
        assert!(pred.iter().all(|p| p.is_finite()));
    }
}
