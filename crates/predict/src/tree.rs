//! A CART-style regression tree with exact greedy variance-reduction
//! splits, per-node feature subsampling, and mean-value leaves.
//!
//! Used directly and as the base learner of [`crate::RandomForest`].

use crate::Regressor;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// Regression tree hyperparameters.
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each child.
    pub min_samples_leaf: usize,
    /// Features considered per split: `None` = all, `Some(k)` = random k
    /// (the forest's decorrelation knob).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 5,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree (arena representation).
#[derive(Clone, Debug, Default)]
pub struct DecisionTree {
    /// Hyperparameters.
    pub config: TreeConfig,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Fits on a subset of rows (used by bagging). `rows` may contain
    /// duplicates (bootstrap).
    pub fn fit_rows(&mut self, x: &Matrix, y: &[f64], rows: &[usize], rng: &mut Rng) {
        assert!(!rows.is_empty(), "DecisionTree: empty row set");
        self.nodes.clear();
        let mut rows = rows.to_vec();
        self.build(x, y, &mut rows, 0, rng);
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        rows: &mut [usize],
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let n = rows.len();
        let sum: f64 = rows.iter().map(|&i| y[i]).sum();
        let mean = sum / n as f64;
        if depth >= self.config.max_depth || n < 2 * self.config.min_samples_leaf {
            return self.push_leaf(mean);
        }
        let Some((feature, threshold)) = self.best_split(x, y, rows, rng) else {
            return self.push_leaf(mean);
        };
        // Partition in place.
        let mut lo = 0;
        let mut hi = n;
        while lo < hi {
            if x.get(rows[lo], feature) <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                rows.swap(lo, hi);
            }
        }
        if lo < self.config.min_samples_leaf || n - lo < self.config.min_samples_leaf {
            return self.push_leaf(mean);
        }
        // Reserve the split node index before recursing.
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(lo);
        let left = self.build(x, y, left_rows, depth + 1, rng);
        let right = self.build(x, y, right_rows, depth + 1, rng);
        self.nodes[idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Best variance-reduction split over the (possibly subsampled)
    /// features. Returns `None` when no split improves on the parent.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        rows: &[usize],
        rng: &mut Rng,
    ) -> Option<(usize, f64)> {
        let f = x.cols();
        let candidates: Vec<usize> = match self.config.max_features {
            Some(k) if k < f => rng.sample_indices(f, k),
            _ => (0..f).collect(),
        };
        let n = rows.len() as f64;
        let total_sum: f64 = rows.iter().map(|&i| y[i]).sum();

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(rows.len());
        for &feat in &candidates {
            pairs.clear();
            pairs.extend(rows.iter().map(|&i| (x.get(i, feat), y[i])));
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..pairs.len() - 1 {
                left_sum += pairs[w].1;
                left_n += 1.0;
                if pairs[w].0 == pairs[w + 1].0 {
                    continue; // can't split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                if left_n < self.config.min_samples_leaf as f64
                    || right_n < self.config.min_samples_leaf as f64
                {
                    continue;
                }
                // Maximising Σ n_c mean_c² is equivalent to minimising
                // within-node variance.
                let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                if best.is_none_or(|(_, _, s)| score > s) {
                    let threshold = (pairs[w].0 + pairs[w + 1].0) / 2.0;
                    best = Some((feat, threshold, score));
                }
            }
        }
        // Require strict improvement over the parent score.
        let parent_score = total_sum * total_sum / n;
        best.and_then(|(feat, th, score)| {
            if score > parent_score + 1e-12 {
                Some((feat, th))
            } else {
                None
            }
        })
    }

    fn predict_row(&self, x: &Matrix, row: usize) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x.get(row, *feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Regressor for DecisionTree {
    fn name(&self) -> &'static str {
        "Tree"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64], rng: &mut Rng) {
        let rows: Vec<usize> = (0..x.rows()).collect();
        self.fit_rows(x, y, &rows, rng);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(
            !self.nodes.is_empty(),
            "DecisionTree::predict called before fit"
        );
        (0..x.rows()).map(|r| self.predict_row(x, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function_exactly() {
        let x = Matrix::from_fn(20, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 2,
            ..Default::default()
        });
        let mut rng = Rng::seed_from_u64(1);
        t.fit(&x, &y, &mut rng);
        let pred = t.predict(&x);
        assert_eq!(pred[0], 1.0);
        assert_eq!(pred[19], 5.0);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = Matrix::from_fn(10, 2, |i, j| (i * 2 + j) as f64);
        let y = vec![3.0; 10];
        let mut t = DecisionTree::default();
        let mut rng = Rng::seed_from_u64(2);
        t.fit(&x, &y, &mut rng);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.predict(&x).iter().all(|&p| p == 3.0));
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = Rng::seed_from_u64(3);
        let x = Matrix::from_fn(256, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..256).map(|_| rng.uniform()).collect();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 3,
            min_samples_leaf: 1,
            max_features: None,
        });
        t.fit(&x, &y, &mut rng);
        // Depth-3 binary tree has at most 2^4 − 1 nodes.
        assert!(t.num_nodes() <= 15, "{} nodes", t.num_nodes());
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_fn(6, 1, |i, _| i as f64);
        let y = vec![0.0, 0.0, 0.0, 10.0, 10.0, 10.0];
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 5,
            min_samples_leaf: 3,
            max_features: None,
        });
        let mut rng = Rng::seed_from_u64(4);
        t.fit(&x, &y, &mut rng);
        // Exactly one split possible (3 | 3).
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let mut rng = Rng::seed_from_u64(5);
        let x = Matrix::from_fn(200, 4, |_, _| rng.uniform());
        let y: Vec<f64> = (0..200)
            .map(|i| if x.get(i, 2) > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 6,
            min_samples_leaf: 2,
            max_features: Some(2),
        });
        t.fit(&x, &y, &mut rng);
        let pred = t.predict(&x);
        let correct = pred
            .iter()
            .zip(&y)
            .filter(|(p, t)| (*p - *t).abs() < 0.5)
            .count();
        assert!(correct > 160, "only {correct}/200 correct");
    }

    #[test]
    fn bootstrap_rows_with_duplicates() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let rows = vec![0, 0, 1, 1, 5, 5, 9, 9];
        let mut t = DecisionTree::default();
        let mut rng = Rng::seed_from_u64(6);
        t.fit_rows(&x, &y, &rows, &mut rng);
        assert!(t.predict(&x)[0] < t.predict(&x)[9]);
    }
}
