//! Prediction models for TransferGraph (§VI-C): the tabular regressors that
//! learn *(metadata ⊕ similarity ⊕ graph features) → fine-tune accuracy*.
//!
//! * [`RidgeRegression`] — the paper's "linear regression" (LR) prediction
//!   model, with a small ridge term for the collinear one-hot blocks;
//! * [`RandomForest`] — 100 trees, max depth 5 (§VI-C);
//! * [`Gbdt`] — XGBoost-style second-order gradient boosting with histogram
//!   splits, 500 trees, max depth 5 (§VI-C).
//!
//! All models implement [`Regressor`].
//!
//! # Example
//!
//! ```
//! use tg_predict::{Regressor, RidgeRegression};
//! use tg_linalg::Matrix;
//! use tg_rng::Rng;
//!
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
//! let mut lr = RidgeRegression::default();
//! lr.fit(&x, &y, &mut Rng::seed_from_u64(0));
//! let pred = lr.predict(&Matrix::from_rows(&[&[4.0]]));
//! assert!((pred[0] - 9.0).abs() < 0.1);
//! ```

pub mod forest;
pub mod gbdt;
pub mod linear;
pub mod tree;

pub use forest::RandomForest;
pub use gbdt::Gbdt;
pub use linear::RidgeRegression;
pub use tree::DecisionTree;

use tg_linalg::Matrix;
use tg_rng::Rng;

/// A supervised regressor over dense tabular features.
pub trait Regressor {
    /// Short name used in experiment tables ("LR", "RF", "XGB").
    fn name(&self) -> &'static str;

    /// Fits the model to `x` (`n × f`) and targets `y` (`n`).
    fn fit(&mut self, x: &Matrix, y: &[f64], rng: &mut Rng);

    /// Predicts targets for new rows. Panics if called before `fit`.
    fn predict(&self, x: &Matrix) -> Vec<f64>;
}

/// The paper's three prediction models, for experiment dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegressorKind {
    /// Linear (ridge) regression.
    Linear,
    /// Random forest (100 × depth 5).
    RandomForest,
    /// Gradient boosting (500 × depth 5).
    Xgb,
}

impl RegressorKind {
    /// All prediction models in the paper's order.
    pub const ALL: [RegressorKind; 3] = [
        RegressorKind::Linear,
        RegressorKind::RandomForest,
        RegressorKind::Xgb,
    ];

    /// Display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            RegressorKind::Linear => "LR",
            RegressorKind::RandomForest => "RF",
            RegressorKind::Xgb => "XGB",
        }
    }

    /// Instantiates the regressor with the paper's hyperparameters.
    pub fn build(&self) -> Box<dyn Regressor> {
        match self {
            RegressorKind::Linear => Box::new(RidgeRegression::default()),
            RegressorKind::RandomForest => Box::new(RandomForest::default()),
            RegressorKind::Xgb => Box::new(Gbdt::default()),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use tg_linalg::Matrix;
    use tg_rng::Rng;

    /// Nonlinear synthetic regression task.
    pub fn friedmanish(rng: &mut Rng, n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 5, |_, _| rng.uniform());
        let y = (0..n)
            .map(|i| {
                let r = x.row(i);
                (std::f64::consts::PI * r[0] * r[1]).sin() * 10.0
                    + 20.0 * (r[2] - 0.5).powi(2)
                    + 10.0 * r[3]
                    + 5.0 * r[4]
                    + rng.normal(0.0, 0.5)
            })
            .collect();
        (x, y)
    }

    pub fn r2(y: &[f64], pred: &[f64]) -> f64 {
        let mean = tg_linalg::stats::mean(y);
        let ss_res: f64 = y.iter().zip(pred).map(|(a, b)| (a - b) * (a - b)).sum();
        let ss_tot: f64 = y.iter().map(|a| (a - mean) * (a - mean)).sum();
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::{friedmanish, r2};

    #[test]
    fn all_kinds_fit_nonlinear_data_reasonably() {
        let mut rng = Rng::seed_from_u64(1);
        let (x, y) = friedmanish(&mut rng, 500);
        let (xt, yt) = friedmanish(&mut rng, 200);
        for kind in RegressorKind::ALL {
            let mut model = kind.build();
            model.fit(&x, &y, &mut rng);
            let pred = model.predict(&xt);
            let score = r2(&yt, &pred);
            let floor = match kind {
                RegressorKind::Linear => 0.5, // linear can't capture the sin term
                _ => 0.6,
            };
            assert!(score > floor, "{} r2={score}", kind.name());
        }
    }

    #[test]
    fn tree_models_beat_linear_on_nonlinear_data() {
        let mut rng = Rng::seed_from_u64(2);
        let (x, y) = friedmanish(&mut rng, 600);
        let (xt, yt) = friedmanish(&mut rng, 300);
        let mut scores = std::collections::HashMap::new();
        for kind in RegressorKind::ALL {
            let mut model = kind.build();
            model.fit(&x, &y, &mut rng);
            scores.insert(kind, r2(&yt, &model.predict(&xt)));
        }
        assert!(scores[&RegressorKind::Xgb] > scores[&RegressorKind::Linear]);
    }
}
