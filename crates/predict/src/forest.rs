//! Random forest regressor: bagged [`DecisionTree`]s with per-node feature
//! subsampling. The paper sets 100 trees and max depth 5 (§VI-C).

use crate::tree::{DecisionTree, TreeConfig};
use crate::Regressor;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// Random forest hyperparameters.
#[derive(Clone, Debug)]
pub struct RandomForest {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    trees: Vec<DecisionTree>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 100,
            max_depth: 5,
            min_samples_leaf: 2,
            trees: Vec::new(),
        }
    }
}

impl RandomForest {
    /// Forest with explicit size/depth.
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        RandomForest {
            n_trees,
            max_depth,
            ..Default::default()
        }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn fit(&mut self, x: &Matrix, y: &[f64], rng: &mut Rng) {
        let n = x.rows();
        assert_eq!(n, y.len(), "RandomForest::fit: row/target mismatch");
        assert!(n > 0, "RandomForest::fit: empty input");
        // f/3 features per split — Breiman's regression default (√f, the
        // classification default, drowns the informative metadata columns
        // when 2×128 embedding dimensions dominate the feature width).
        let max_features = (x.cols() / 3).max(1);
        let config = TreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: self.min_samples_leaf,
            max_features: Some(max_features),
        };
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap sample with replacement.
                let rows: Vec<usize> = (0..n).map(|_| rng.index(n)).collect();
                let mut tree = DecisionTree::new(config.clone());
                tree.fit_rows(x, y, &rows, rng);
                tree
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(
            !self.trees.is_empty(),
            "RandomForest::predict called before fit"
        );
        let mut acc = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{friedmanish, r2};

    #[test]
    fn fits_and_generalises() {
        let mut rng = Rng::seed_from_u64(1);
        let (x, y) = friedmanish(&mut rng, 400);
        let (xt, yt) = friedmanish(&mut rng, 200);
        let mut rf = RandomForest::default();
        rf.fit(&x, &y, &mut rng);
        assert_eq!(rf.num_trees(), 100);
        let score = r2(&yt, &rf.predict(&xt));
        assert!(score > 0.6, "r2 {score}");
    }

    #[test]
    fn averaging_reduces_variance_vs_single_tree() {
        let mut rng = Rng::seed_from_u64(2);
        let (x, y) = friedmanish(&mut rng, 300);
        let (xt, yt) = friedmanish(&mut rng, 200);
        let mut rf = RandomForest::new(60, 5);
        rf.fit(&x, &y, &mut rng);
        let rf_score = r2(&yt, &rf.predict(&xt));
        let mut single = RandomForest::new(1, 5);
        single.fit(&x, &y, &mut rng);
        let single_score = r2(&yt, &single.predict(&xt));
        assert!(
            rf_score > single_score,
            "rf {rf_score} single {single_score}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Rng::seed_from_u64(3);
        let mut r2_ = Rng::seed_from_u64(3);
        let (x, y) = friedmanish(&mut Rng::seed_from_u64(4), 100);
        let mut a = RandomForest::new(10, 4);
        let mut b = RandomForest::new(10, 4);
        a.fit(&x, &y, &mut r1);
        b.fit(&x, &y, &mut r2_);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn constant_target() {
        let mut rng = Rng::seed_from_u64(5);
        let x = Matrix::from_fn(50, 3, |_, _| rng.uniform());
        let y = vec![2.5; 50];
        let mut rf = RandomForest::new(10, 3);
        rf.fit(&x, &y, &mut rng);
        assert!(rf.predict(&x).iter().all(|&p| (p - 2.5).abs() < 1e-9));
    }
}
