//! Dense linear algebra, statistics, and distance functions for the
//! TransferGraph reproduction.
//!
//! This is the numeric substrate under the transferability estimators
//! (LogME needs an SVD and repeated projections), the graph learners
//! (embedding algebra), the prediction models (ridge regression solves a
//! normal-equations system via Cholesky), and the evaluation metrics
//! (Pearson / Spearman correlation — the paper's Eq. 1).
//!
//! Everything is `f64`, row-major, and implemented from scratch: the point of
//! the reproduction is to have no opaque numeric dependencies.
//!
//! # Example
//!
//! ```
//! use tg_linalg::{Matrix, stats};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = a.matmul(&a.transpose());
//! assert_eq!(b.get(0, 0), 5.0);
//! let r = stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
//! assert!((r - 1.0).abs() < 1e-12);
//! ```

pub mod decomp;
pub mod distance;
pub mod matrix;
pub mod pca;
pub mod pool;
pub mod stats;

pub use matrix::Matrix;
