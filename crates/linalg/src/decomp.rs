//! Matrix decompositions: Cholesky, symmetric eigendecomposition (cyclic
//! Jacobi), thin SVD, and a one-sided (Hestenes) Jacobi SVD with optional
//! blocked-parallel sweeps.
//!
//! These are the numeric workhorses of the reproduction:
//! * ridge regression (`tg-predict`) solves normal equations with
//!   [`cholesky_solve`];
//! * LogME (`tg-transfer`) projects labels onto the right singular basis of
//!   the feature matrix, obtained with [`thin_svd`] or
//!   [`one_sided_jacobi_svd`];
//! * PARC and dataset-similarity computations use the eigen routines
//!   indirectly through correlation matrices.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use tg_sync::{rank_guard, unpoisoned, Rank};

use crate::matrix::Matrix;
use crate::pool;

/// Singular values at or below this absolute threshold are treated as zero:
/// the corresponding left singular vectors are not formed (columns of `U`
/// stay zero) and downstream projections through `Σ⁻¹` skip them.
pub const SIGMA_CLAMP: f64 = 1e-12;

/// Default sweep budget of every Jacobi iteration in this module.
pub const MAX_SWEEPS: usize = 64;

/// Errors from decomposition routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The matrix is not square where a square matrix is required.
    NotSquare,
    /// Cholesky failed: the matrix is not (numerically) positive definite.
    NotPositiveDefinite,
    /// Jacobi sweep did not converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::NotSquare => write!(f, "matrix is not square"),
            DecompError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            DecompError::NoConvergence => write!(f, "iteration did not converge"),
        }
    }
}

impl std::error::Error for DecompError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// `A` must be symmetric positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix, DecompError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(DecompError::NotSquare);
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(DecompError::NotPositiveDefinite);
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    let l = cholesky(a)?;
    let n = a.rows();
    assert_eq!(b.len(), n, "cholesky_solve: rhs length mismatch");
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * y[k];
        }
        y[i] = s / l.get(i, i);
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    Ok(x)
}

/// Symmetric eigendecomposition by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
/// descending order; eigenvector `k` is column `k` of the returned matrix.
pub fn symmetric_eigen(a: &Matrix) -> Result<(Vec<f64>, Matrix), DecompError> {
    symmetric_eigen_with_sweeps(a, MAX_SWEEPS).map(|(vals, vecs, _)| (vals, vecs))
}

/// [`symmetric_eigen`] with an explicit sweep budget, additionally returning
/// the number of full sweeps that ran before convergence (0 for an already
/// diagonal input).
///
/// Convergence is checked once more *after* the final sweep — the historical
/// loop checked only before each sweep, so an input that reached tolerance
/// during its last allowed sweep was misreported as [`DecompError::NoConvergence`].
pub fn symmetric_eigen_with_sweeps(
    a: &Matrix,
    max_sweeps: usize,
) -> Result<(Vec<f64>, Matrix, usize), DecompError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(DecompError::NotSquare);
    }
    // The sweep maintains only the upper triangle of M (the lower triangle
    // goes stale after the first rotation and is never read): a two-sided
    // Jacobi rotation keeps M symmetric, so tracking one triangle halves
    // the matrix work per rotation, and the (p,p)/(q,q)/(p,q) entries have
    // exact closed forms (Golub & Van Loan §8.5). `sorted_eigen` reads
    // only the diagonal, and the convergence norm reads only the upper
    // triangle, so the stale half is never observed.
    // Eigenvectors are accumulated transposed (`vt` row k is eigenvector
    // k): a Givens update touches eigenvector *columns* p and q, which in
    // `vt` are two contiguous rows — the per-element arithmetic is
    // unchanged (bit-identical), but the accesses vectorize instead of
    // striding across every row. One exact transpose restores V at the end.
    let mut m = a.clone();
    let mut vt = Matrix::identity(n);
    for sweep in 0..=max_sweeps {
        // Off-diagonal Frobenius norm (upper triangle): convergence
        // criterion, scale-relative against the full Frobenius norm
        // reconstructed from the triangle.
        let mut off2 = 0.0;
        let mut diag2 = 0.0;
        for i in 0..n {
            let row = m.row(i);
            diag2 += row[i] * row[i];
            for x in &row[i + 1..] {
                off2 += x * x;
            }
        }
        let frob = (diag2 + 2.0 * off2).sqrt();
        if off2.sqrt() < 1e-12 * (1.0 + frob) {
            let (vals, vecs) = sorted_eigen(&m, &vt.transpose());
            return Ok((vals, vecs, sweep));
        }
        if sweep == max_sweeps {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Threshold Jacobi: an off-diagonal element already at
                // rounding level relative to its diagonal pair cannot be
                // improved by a rotation — its computed angle is pure
                // noise. Skipping it leaves off² contributions of at most
                // (ε·√|app·aqq|)² per entry, far inside the convergence
                // tolerance below, and makes late sweeps (where almost
                // every entry qualifies) nearly free.
                if apq * apq <= f64::EPSILON * f64::EPSILON * (app * aqq).abs() {
                    continue;
                }
                // Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                rotate_upper(m.as_mut_slice(), n, p, q, t, c, s);
                // Accumulate eigenvectors: rows p and q of Vᵀ, contiguous.
                let (head, tail) = vt.as_mut_slice().split_at_mut(q * n);
                let rp = &mut head[p * n..p * n + n];
                let rq = &mut tail[..n];
                for (xp, xq) in rp.iter_mut().zip(rq.iter_mut()) {
                    let (x, y) = (*xp, *xq);
                    *xp = c * x - s * y;
                    *xq = s * x + c * y;
                }
            }
        }
    }
    Err(DecompError::NoConvergence)
}

/// Applies the two-sided Jacobi rotation `M ← JᵀMJ` for the pair `p < q`
/// to the upper triangle of a row-major `n × n` buffer, leaving the lower
/// triangle stale. Diagonal and pivot entries use the exact closed forms
/// `a_pp − t·a_pq` / `a_qq + t·a_pq` / `0`; every other affected entry
/// `(k,p)`/`(k,q)` lives in one of three triangle segments (`k < p`,
/// `p < k < q`, `k > q`) and is updated with the standard Givens formulas
/// in ascending-`k` order.
fn rotate_upper(data: &mut [f64], n: usize, p: usize, q: usize, t: f64, c: f64, s: f64) {
    debug_assert!(p < q);
    let apq = data[p * n + q];
    data[p * n + p] -= t * apq;
    data[q * n + q] += t * apq;
    data[p * n + q] = 0.0;
    // k < p: both entries are column reads a[k][p], a[k][q].
    for row in data[..p * n].chunks_exact_mut(n) {
        let (x, y) = (row[p], row[q]);
        row[p] = c * x - s * y;
        row[q] = s * x + c * y;
    }
    // Split so row p (in `head`) and rows p+1.. (in `tail`) borrow
    // disjointly; row p's tail holds a[p][k] for k > p, and column q of
    // the later rows holds a[k][q].
    let (head, tail) = data.split_at_mut((p + 1) * n);
    let rowp = &mut head[p * n..];
    // p < k < q: a[p][k] is contiguous in row p, a[k][q] is a column read.
    for (i, row) in tail.chunks_exact_mut(n).take(q - p - 1).enumerate() {
        let (x, y) = (rowp[p + 1 + i], row[q]);
        rowp[p + 1 + i] = c * x - s * y;
        row[q] = s * x + c * y;
    }
    // k > q: both entries are contiguous row reads a[p][k], a[q][k].
    let rowq = &mut tail[(q - p - 1) * n..(q - p) * n];
    for k in (q + 1)..n {
        let (x, y) = (rowp[k], rowq[k]);
        rowp[k] = c * x - s * y;
        rowq[k] = s * x + c * y;
    }
}

fn sorted_eigen(m: &Matrix, v: &Matrix) -> (Vec<f64>, Matrix) {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m.get(b, b).total_cmp(&m.get(a, a)));
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));
    (values, vectors)
}

/// Thin singular value decomposition of an `n x d` matrix.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `n x k` (columns are u_i).
    pub u: Matrix,
    /// Singular values, descending, length `k = min(n, d)` (small values may
    /// be clamped to 0).
    pub sigma: Vec<f64>,
    /// Right singular vectors, `d x k` (columns are v_i).
    pub v: Matrix,
}

/// Thin SVD via eigendecomposition of the smaller Gram matrix.
///
/// For `n >= d` we decompose `AᵀA = V Σ² Vᵀ` and recover `U = A V Σ⁻¹`; for
/// `n < d` the roles are swapped. This is accurate enough for the
/// conditioning encountered here (feature matrices with moderate dynamic
/// range) and keeps the implementation compact.
pub fn thin_svd(a: &Matrix) -> Result<Svd, DecompError> {
    thin_svd_with_sweeps(a).map(|(svd, _)| svd)
}

/// [`thin_svd`] additionally reporting the Jacobi sweep count of the inner
/// Gram eigendecomposition (telemetry for the decomposition benches).
pub fn thin_svd_with_sweeps(a: &Matrix) -> Result<(Svd, usize), DecompError> {
    let (n, d) = a.shape();
    if n >= d {
        let (mut evals, v, sweeps) = symmetric_eigen_with_sweeps(&a.gram(), MAX_SWEEPS)?;
        for e in &mut evals {
            *e = e.max(0.0);
        }
        let sigma: Vec<f64> = evals.iter().map(|e| e.sqrt()).collect();
        // U = A V Σ⁻¹ (columns with σ≈0 are left as zero vectors).
        let av = a.matmul(&v);
        let u = Matrix::from_fn(n, d, |r, c| {
            if sigma[c] > SIGMA_CLAMP {
                av.get(r, c) / sigma[c]
            } else {
                0.0
            }
        });
        Ok((Svd { u, sigma, v }, sweeps))
    } else {
        let at = a.transpose();
        let (sv, sweeps) = thin_svd_with_sweeps(&at)?;
        Ok((
            Svd {
                u: sv.v,
                sigma: sv.sigma,
                v: sv.u,
            },
            sweeps,
        ))
    }
}

/// Options for [`one_sided_jacobi_svd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiOpts {
    /// Full-sweep budget before the iteration gives up with
    /// [`DecompError::NoConvergence`].
    pub max_sweeps: usize,
    /// Relative per-pair orthogonality threshold: columns `(p, q)` are
    /// rotated only while `|aₚ·a_q| > tol · ‖aₚ‖ ‖a_q‖`. A sweep that
    /// applies no rotation means every pair is orthogonal to tolerance and
    /// the iteration has converged.
    pub tol: f64,
    /// Worker threads for the rotation rounds (`<= 1` = sequential). Any
    /// value produces bit-identical factors — see the determinism note on
    /// [`one_sided_jacobi_svd`].
    pub workers: usize,
}

impl Default for JacobiOpts {
    fn default() -> Self {
        JacobiOpts {
            max_sweeps: MAX_SWEEPS,
            tol: 1e-12,
            workers: 1,
        }
    }
}

/// One column of the matrix being orthogonalised, paired with the matching
/// column of the accumulated right singular basis.
struct JacobiCol {
    a: Vec<f64>,
    v: Vec<f64>,
}

/// Round-robin (circle method) rotation schedule: `d` columns are paired
/// over `d − 1` rounds (`d` padded to even with a bye), every unordered pair
/// appearing exactly once per sweep and the pairs within one round being
/// mutually disjoint. Pairs are emitted `(min, max)`.
fn tournament_rounds(d: usize) -> Vec<Vec<(usize, usize)>> {
    if d < 2 {
        return Vec::new();
    }
    let m = d + (d % 2);
    let mut ring: Vec<usize> = (0..m).collect();
    let mut rounds = Vec::with_capacity(m - 1);
    for _ in 0..m - 1 {
        let mut pairs = Vec::with_capacity(m / 2);
        for k in 0..m / 2 {
            let (x, y) = (ring[k], ring[m - 1 - k]);
            // Skip the padding bye column when d is odd.
            if x < d && y < d {
                pairs.push((x.min(y), x.max(y)));
            }
        }
        rounds.push(pairs);
        ring[1..].rotate_right(1);
    }
    rounds
}

/// One Hestenes rotation: orthogonalises columns `p` (in `cp`) and `q` (in
/// `cq`), `p < q`, returning whether a rotation was applied. The same plane
/// rotation is accumulated into the `v` columns.
fn rotate_pair(cp: &mut JacobiCol, cq: &mut JacobiCol, tol: f64) -> bool {
    let mut alpha = 0.0;
    let mut beta = 0.0;
    let mut gamma = 0.0;
    for (x, y) in cp.a.iter().zip(&cq.a) {
        alpha += x * x;
        beta += y * y;
        gamma += x * y;
    }
    if gamma.abs() <= tol * (alpha * beta).sqrt() {
        return false;
    }
    let zeta = (beta - alpha) / (2.0 * gamma);
    let t = zeta.signum() / (zeta.abs() + (zeta * zeta + 1.0).sqrt());
    let c = 1.0 / (t * t + 1.0).sqrt();
    let s = c * t;
    for (x, y) in cp.a.iter_mut().zip(cq.a.iter_mut()) {
        let (xi, yi) = (*x, *y);
        *x = c * xi - s * yi;
        *y = s * xi + c * yi;
    }
    for (x, y) in cp.v.iter_mut().zip(cq.v.iter_mut()) {
        let (xi, yi) = (*x, *y);
        *x = c * xi - s * yi;
        *y = s * xi + c * yi;
    }
    true
}

/// Thin SVD by one-sided (Hestenes) Jacobi: the columns of `A` are rotated
/// until mutually orthogonal, giving `A·V = U·Σ` without ever forming the
/// Gram matrix. Returns the factorisation plus the number of full sweeps
/// (including the final all-orthogonal sweep that detects convergence).
///
/// # Determinism under parallelism
///
/// Rotations follow a fixed round-robin tournament schedule: each sweep is
/// `d − 1` rounds of up to `⌊d/2⌋` column pairs, and the pairs within one
/// round touch *disjoint* columns. Rounds are barrier-separated on the
/// shared [`pool::drain_rounds`] worker pool, so every rotation reads
/// exactly the column state produced by the previous round regardless of
/// worker count or interleaving — the factors are bit-identical for any
/// `workers`, which the test suite asserts.
///
/// Parallelism pays only when the per-round rotation work (`⌊d/2⌋ · O(n)`)
/// dwarfs the pool's per-sweep synchronisation; at this repo's paper-scale
/// shapes (`d = 32`) sequential is faster, and the default is `workers: 1`.
pub fn one_sided_jacobi_svd(a: &Matrix, opts: &JacobiOpts) -> Result<(Svd, usize), DecompError> {
    let (n, d) = a.shape();
    if n < d {
        let (sv, sweeps) = one_sided_jacobi_svd(&a.transpose(), opts)?;
        return Ok((
            Svd {
                u: sv.v,
                sigma: sv.sigma,
                v: sv.u,
            },
            sweeps,
        ));
    }
    let cols: Vec<Mutex<JacobiCol>> = (0..d)
        .map(|j| {
            let col: Vec<f64> = (0..n).map(|r| a.get(r, j)).collect();
            let mut v = vec![0.0; d];
            v[j] = 1.0;
            Mutex::new(JacobiCol { a: col, v })
        })
        .collect();
    let rounds = tournament_rounds(d);
    let round_sizes: Vec<usize> = rounds.iter().map(Vec::len).collect();
    let mut converged_after = None;
    if rounds.is_empty() {
        // 0 or 1 columns: nothing to orthogonalise.
        converged_after = Some(0);
    }
    for sweep in 1..=opts.max_sweeps {
        if converged_after.is_some() {
            break;
        }
        let rotated = AtomicBool::new(false);
        pool::drain_rounds(&round_sizes, opts.workers, |round, k| {
            let (p, q) = rounds[round][k];
            // p < q and pairs within a round are disjoint, so these two
            // same-rank (`jacobi_col`) acquisitions never contend with any
            // concurrently running pair, let alone deadlock; the mutexes
            // only exist to prove disjointness to the compiler without
            // `unsafe`. Poison is unreachable (rotations don't panic), and
            // recovering the inner value is the no-panic fallback. The
            // rank guards make the debug-build tracker in `tg-sync` see
            // both equal-rank leaf acquisitions.
            let _rank_p = rank_guard(Rank::JacobiCol);
            let mut cp = unpoisoned(cols[p].lock());
            let _rank_q = rank_guard(Rank::JacobiCol);
            let mut cq = unpoisoned(cols[q].lock());
            if rotate_pair(&mut cp, &mut cq, opts.tol) {
                rotated.store(true, Ordering::Relaxed);
            }
        });
        if !rotated.load(Ordering::Relaxed) {
            converged_after = Some(sweep);
        }
    }
    let Some(sweeps) = converged_after else {
        return Err(DecompError::NoConvergence);
    };
    let cols: Vec<JacobiCol> = cols
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let norms: Vec<f64> = cols
        .iter()
        .map(|c| c.a.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    let mut order: Vec<usize> = (0..d).collect();
    // Descending by singular value; the stable sort keeps original column
    // order on ties, so the output ordering is deterministic.
    order.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]));
    let sigma: Vec<f64> = order.iter().map(|&j| norms[j]).collect();
    let u = Matrix::from_fn(n, d, |r, c| {
        let j = order[c];
        if norms[j] > SIGMA_CLAMP {
            cols[j].a[r] / norms[j]
        } else {
            0.0
        }
    });
    let v = Matrix::from_fn(d, d, |r, c| cols[order[c]].v[r]);
    Ok((Svd { u, sigma, v }, sweeps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-10));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(DecompError::NotPositiveDefinite));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a), Err(DecompError::NotSquare));
    }

    #[test]
    fn cholesky_solve_known_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = [1.0, 2.0];
        let x = cholesky_solve(&a, &b).unwrap();
        // Verify A x = b.
        let ax = a.matvec(&x);
        assert!(approx(ax[0], 1.0, 1e-12));
        assert!(approx(ax[1], 2.0, 1e-12));
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!(approx(vals[0], 7.0, 1e-10));
        assert!(approx(vals[1], 3.0, 1e-10));
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = (vecs.get(0, 0), vecs.get(1, 0));
        assert!(approx(v0.0.abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8));
        assert!(approx((v0.0 - v0.1).abs(), 0.0, 1e-8));
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[5.0, 1.0, 0.5, 0.2],
            &[1.0, 4.0, 0.3, 0.1],
            &[0.5, 0.3, 3.0, 0.4],
            &[0.2, 0.1, 0.4, 2.0],
        ]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        // A = V diag(λ) Vᵀ
        let lam = Matrix::from_fn(4, 4, |r, c| if r == c { vals[r] } else { 0.0 });
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8));
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(5, 5, |r, c| 1.0 / (1.0 + (r as f64 - c as f64).abs()));
        let (_, vecs) = symmetric_eigen(&a).unwrap();
        let vtv = vecs.transpose().matmul(&vecs);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(vtv.get(i, j), expect, 1e-8));
            }
        }
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let svd = thin_svd(&a).unwrap();
        // A = U Σ Vᵀ
        let sig = Matrix::from_fn(2, 2, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..4 {
            for j in 0..2 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn svd_reconstructs_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0, -1.0], &[0.5, 3.0, 1.0, 0.0]]);
        let svd = thin_svd(&a).unwrap();
        let k = svd.sigma.len();
        let sig = Matrix::from_fn(k, k, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..2 {
            for j in 0..4 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn svd_singular_values_descending_nonnegative() {
        let a = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f64 * 0.7).cos());
        let svd = thin_svd(&a).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn eigen_reports_zero_sweeps_for_diagonal_input() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let (vals, _, sweeps) = symmetric_eigen_with_sweeps(&a, MAX_SWEEPS).unwrap();
        assert_eq!(sweeps, 0);
        assert!(approx(vals[0], 7.0, 1e-12));
    }

    #[test]
    fn eigen_signals_no_convergence_on_exhausted_budget() {
        // A dense symmetric matrix needs at least one sweep; a zero budget
        // must surface as an error, not as silently unconverged factors.
        let a = Matrix::from_fn(5, 5, |r, c| 1.0 / (1.0 + (r as f64 - c as f64).abs()));
        assert_eq!(
            symmetric_eigen_with_sweeps(&a, 0),
            Err(DecompError::NoConvergence)
        );
        // The same matrix converges comfortably within the default budget,
        // in a nonzero number of sweeps.
        let (_, _, sweeps) = symmetric_eigen_with_sweeps(&a, MAX_SWEEPS).unwrap();
        assert!(sweeps > 0 && sweeps <= MAX_SWEEPS, "sweeps={sweeps}");
    }

    #[test]
    fn eigen_convergence_is_checked_after_the_final_sweep() {
        // Regression for the historical off-by-one: with a budget of
        // exactly `sweeps` (the count the default budget reports), the
        // convergence check after the last sweep must still fire — the old
        // loop only checked before each sweep and misreported this case as
        // NoConvergence.
        let a = Matrix::from_fn(6, 6, |r, c| {
            ((r * 6 + c).min(c * 6 + r) as f64 * 0.37).sin()
        });
        let sym = Matrix::from_fn(6, 6, |r, c| a.get(r, c) + a.get(c, r));
        let (_, _, sweeps) = symmetric_eigen_with_sweeps(&sym, MAX_SWEEPS).unwrap();
        assert!(sweeps > 1, "want a multi-sweep case, got {sweeps}");
        let (vals_tight, _, tight) = symmetric_eigen_with_sweeps(&sym, sweeps).unwrap();
        assert_eq!(tight, sweeps);
        // One sweep short must fail.
        assert_eq!(
            symmetric_eigen_with_sweeps(&sym, sweeps - 1),
            Err(DecompError::NoConvergence)
        );
        let (vals_default, _) = symmetric_eigen(&sym).unwrap();
        for (a, b) in vals_tight.iter().zip(&vals_default) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tournament_rounds_cover_every_pair_once_disjointly() {
        for d in [2usize, 3, 5, 8, 13] {
            let rounds = tournament_rounds(d);
            let mut seen = std::collections::HashSet::new();
            for round in &rounds {
                let mut touched = std::collections::HashSet::new();
                for &(p, q) in round {
                    assert!(p < q && q < d, "bad pair ({p},{q}) at d={d}");
                    assert!(touched.insert(p) && touched.insert(q), "overlap in round");
                    assert!(seen.insert((p, q)), "pair ({p},{q}) repeated");
                }
            }
            assert_eq!(seen.len(), d * (d - 1) / 2, "missing pairs at d={d}");
        }
        assert!(tournament_rounds(0).is_empty());
        assert!(tournament_rounds(1).is_empty());
    }

    #[test]
    fn jacobi_svd_reconstructs_tall_and_wide() {
        for (n, d) in [(9usize, 4usize), (4, 9)] {
            let a = Matrix::from_fn(n, d, |r, c| ((r * d + c) as f64 * 0.83).cos() * 3.0);
            let (svd, sweeps) = one_sided_jacobi_svd(&a, &JacobiOpts::default()).unwrap();
            assert!(sweeps > 0);
            let k = svd.sigma.len();
            assert_eq!(k, n.min(d));
            let sig = Matrix::from_fn(k, k, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
            let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
            for i in 0..n {
                for j in 0..d {
                    assert!(approx(rec.get(i, j), a.get(i, j), 1e-9), "({i},{j})");
                }
            }
            for w in svd.sigma.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }

    #[test]
    fn jacobi_svd_matches_thin_svd_spectrum() {
        let a = Matrix::from_fn(20, 7, |r, c| ((r as f64 + 1.3) * (c as f64 + 0.7)).sin());
        let (jac, _) = one_sided_jacobi_svd(&a, &JacobiOpts::default()).unwrap();
        let svd = thin_svd(&a).unwrap();
        for (x, y) in jac.sigma.iter().zip(&svd.sigma) {
            assert!(approx(*x, *y, 1e-8), "{x} vs {y}");
        }
    }

    #[test]
    fn jacobi_svd_zeroes_rank_deficient_directions() {
        // Duplicate column: rank 1, second σ exactly-ish zero, matching the
        // thin_svd σ≈0 clamping contract (zero U column).
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let (svd, _) = one_sided_jacobi_svd(&a, &JacobiOpts::default()).unwrap();
        assert!(svd.sigma[1] <= SIGMA_CLAMP, "σ₁={}", svd.sigma[1]);
        for r in 0..3 {
            assert_eq!(svd.u.get(r, 1), 0.0);
        }
    }

    #[test]
    fn jacobi_svd_parallel_is_bit_identical_to_sequential() {
        let a = Matrix::from_fn(40, 12, |r, c| ((r * 12 + c) as f64 * 0.311).sin() * 5.0);
        let (seq, seq_sweeps) = one_sided_jacobi_svd(&a, &JacobiOpts::default()).unwrap();
        for workers in [2usize, 4, 7] {
            let opts = JacobiOpts {
                workers,
                ..JacobiOpts::default()
            };
            let (par, par_sweeps) = one_sided_jacobi_svd(&a, &opts).unwrap();
            assert_eq!(seq_sweeps, par_sweeps);
            for c in 0..12 {
                assert_eq!(seq.sigma[c].to_bits(), par.sigma[c].to_bits(), "σ[{c}]");
                for r in 0..40 {
                    assert_eq!(
                        seq.u.get(r, c).to_bits(),
                        par.u.get(r, c).to_bits(),
                        "u({r},{c}) at workers={workers}"
                    );
                }
                for r in 0..12 {
                    assert_eq!(seq.v.get(r, c).to_bits(), par.v.get(r, c).to_bits());
                }
            }
        }
    }

    #[test]
    fn jacobi_svd_signals_no_convergence() {
        let a = Matrix::from_fn(16, 6, |r, c| ((r * 6 + c) as f64 * 0.59).cos());
        let opts = JacobiOpts {
            max_sweeps: 1,
            ..JacobiOpts::default()
        };
        assert_eq!(
            one_sided_jacobi_svd(&a, &opts).map(|(_, s)| s),
            Err(DecompError::NoConvergence)
        );
        assert!(one_sided_jacobi_svd(&a, &JacobiOpts::default()).is_ok());
    }

    /// `jacobi_col` is no longer a static-only rank: the per-column
    /// rotation locks register with the debug-build tracker in
    /// `tg-sync`, and a deliberate inversion trips it.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn jacobi_col_rank_inversion_trips_the_runtime_tracker() {
        let _col = rank_guard(Rank::JacobiCol);
        let _registry = rank_guard(Rank::Registry);
    }

    /// The real parallel sweep path runs clean under the tracker, even
    /// for a caller already holding every rank below `jacobi_col` —
    /// the leaf rank is reachable from anywhere in the stack.
    #[test]
    fn parallel_jacobi_runs_clean_under_the_runtime_tracker() {
        let _held = rank_guard(Rank::CacheShard);
        let a = Matrix::from_fn(24, 8, |r, c| ((r * 8 + c) as f64 * 0.173).sin());
        let opts = JacobiOpts {
            workers: 3,
            ..JacobiOpts::default()
        };
        let (svd, _) = one_sided_jacobi_svd(&a, &opts).expect("converges");
        assert_eq!(svd.sigma.len(), 8);
    }

    #[test]
    fn svd_rank_deficient() {
        // Second column is 2x the first: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = thin_svd(&a).unwrap();
        assert!(
            svd.sigma[1] < 1e-8,
            "second singular value {}",
            svd.sigma[1]
        );
        let sig = Matrix::from_fn(2, 2, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..3 {
            for j in 0..2 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-7));
            }
        }
    }
}

/// QR decomposition via Householder reflections.
///
/// Returns `(Q, R)` with `A = QR`, `Q` orthogonal (`m × m`) and `R` upper
/// triangular (`m × n`). Used for numerically robust least squares when the
/// normal equations of ridge regression would be too ill-conditioned.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    for k in 0..n.min(m.saturating_sub(1)) {
        // Householder vector for column k below the diagonal.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r.get(i, k) * r.get(i, k);
        }
        let norm_x = norm_x.sqrt();
        if norm_x < 1e-300 {
            continue;
        }
        let alpha = -r.get(k, k).signum() * norm_x;
        let mut v = vec![0.0; m];
        for i in k..m {
            v[i] = r.get(i, k);
        }
        v[k] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        // R ← (I − 2vvᵀ/‖v‖²) R
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let s = 2.0 * dot / vnorm2;
            for i in k..m {
                r.set(i, j, r.get(i, j) - s * v[i]);
            }
        }
        // Q ← Q (I − 2vvᵀ/‖v‖²)
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q.get(i, j) * v[j];
            }
            let s = 2.0 * dot / vnorm2;
            for j in k..m {
                q.set(i, j, q.get(i, j) - s * v[j]);
            }
        }
    }
    // Clean tiny sub-diagonal residue.
    for i in 0..m {
        for j in 0..n.min(i) {
            r.set(i, j, 0.0);
        }
    }
    (q, r)
}

/// Least-squares solution of `A x ≈ b` via QR (minimises `‖Ax − b‖₂`).
/// Requires `A` to have full column rank (`m ≥ n`).
pub fn qr_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    let (m, n) = a.shape();
    assert_eq!(m, b.len(), "qr_least_squares: rhs length mismatch");
    if m < n {
        return Err(DecompError::NotSquare);
    }
    let (q, r) = qr(a);
    // x solves R[..n,..n] x = (Qᵀ b)[..n].
    let qtb: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| q.get(i, j) * b[i]).sum())
        .collect();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for k in (i + 1)..n {
            s -= r.get(i, k) * x[k];
        }
        let d = r.get(i, i);
        if d.abs() < 1e-12 {
            return Err(DecompError::NotPositiveDefinite);
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod qr_tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn qr_reconstructs() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[1.0, 3.0, -2.0],
            &[0.0, 1.0, 4.0],
            &[-1.0, 0.5, 1.0],
        ]);
        let (q, r) = qr(&a);
        let rec = q.matmul(&r);
        for i in 0..4 {
            for j in 0..3 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-10), "({i},{j})");
            }
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f64 * 0.77).sin());
        let (q, _) = qr(&a);
        let qtq = q.transpose().matmul(&q);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(qtq.get(i, j), expect, 1e-10), "({i},{j})");
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(4, 4, |r, c| ((r + 2 * c) as f64).cos());
        let (_, r) = qr(&a);
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined consistent system.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let x_true = [3.0, -2.0];
        let b: Vec<f64> = (0..4)
            .map(|i| a.get(i, 0) * x_true[0] + a.get(i, 1) * x_true[1])
            .collect();
        let x = qr_least_squares(&a, &b).unwrap();
        assert!(approx(x[0], 3.0, 1e-10));
        assert!(approx(x[1], -2.0, 1e-10));
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Full-column-rank design: polynomial basis in r.
        let a = Matrix::from_fn(8, 3, |r, c| (r as f64 + 1.0).powi(c as i32));
        let b: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).cos()).collect();
        let x_qr = qr_least_squares(&a, &b).unwrap();
        // Normal equations via Cholesky.
        let atb = a.transpose().matvec(&b);
        let x_ne = cholesky_solve(&a.gram(), &atb).unwrap();
        for (p, q_) in x_qr.iter().zip(&x_ne) {
            assert!(approx(*p, *q_, 1e-8), "{p} vs {q_}");
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(qr_least_squares(&a, &[0.0, 0.0]).is_err());
    }
}
