//! Matrix decompositions: Cholesky, symmetric eigendecomposition (cyclic
//! Jacobi), and thin SVD.
//!
//! These are the numeric workhorses of the reproduction:
//! * ridge regression (`tg-predict`) solves normal equations with
//!   [`cholesky_solve`];
//! * LogME (`tg-transfer`) projects labels onto the right singular basis of
//!   the feature matrix, obtained with [`thin_svd`];
//! * PARC and dataset-similarity computations use the eigen routines
//!   indirectly through correlation matrices.

use crate::matrix::Matrix;

/// Errors from decomposition routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The matrix is not square where a square matrix is required.
    NotSquare,
    /// Cholesky failed: the matrix is not (numerically) positive definite.
    NotPositiveDefinite,
    /// Jacobi sweep did not converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::NotSquare => write!(f, "matrix is not square"),
            DecompError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            DecompError::NoConvergence => write!(f, "iteration did not converge"),
        }
    }
}

impl std::error::Error for DecompError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// `A` must be symmetric positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix, DecompError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(DecompError::NotSquare);
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(DecompError::NotPositiveDefinite);
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    let l = cholesky(a)?;
    let n = a.rows();
    assert_eq!(b.len(), n, "cholesky_solve: rhs length mismatch");
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * y[k];
        }
        y[i] = s / l.get(i, i);
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    Ok(x)
}

/// Symmetric eigendecomposition by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
/// descending order; eigenvector `k` is column `k` of the returned matrix.
pub fn symmetric_eigen(a: &Matrix) -> Result<(Vec<f64>, Matrix), DecompError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(DecompError::NotSquare);
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm: convergence criterion.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + m.frobenius_norm()) {
            return Ok(sorted_eigen(&m, &v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(DecompError::NoConvergence)
}

fn sorted_eigen(m: &Matrix, v: &Matrix) -> (Vec<f64>, Matrix) {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m.get(b, b).total_cmp(&m.get(a, a)));
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));
    (values, vectors)
}

/// Thin singular value decomposition of an `n x d` matrix.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `n x k` (columns are u_i).
    pub u: Matrix,
    /// Singular values, descending, length `k = min(n, d)` (small values may
    /// be clamped to 0).
    pub sigma: Vec<f64>,
    /// Right singular vectors, `d x k` (columns are v_i).
    pub v: Matrix,
}

/// Thin SVD via eigendecomposition of the smaller Gram matrix.
///
/// For `n >= d` we decompose `AᵀA = V Σ² Vᵀ` and recover `U = A V Σ⁻¹`; for
/// `n < d` the roles are swapped. This is accurate enough for the
/// conditioning encountered here (feature matrices with moderate dynamic
/// range) and keeps the implementation compact.
pub fn thin_svd(a: &Matrix) -> Result<Svd, DecompError> {
    let (n, d) = a.shape();
    if n >= d {
        let (mut evals, v) = symmetric_eigen(&a.gram())?;
        for e in &mut evals {
            *e = e.max(0.0);
        }
        let sigma: Vec<f64> = evals.iter().map(|e| e.sqrt()).collect();
        // U = A V Σ⁻¹ (columns with σ≈0 are left as zero vectors).
        let av = a.matmul(&v);
        let u = Matrix::from_fn(n, d, |r, c| {
            if sigma[c] > 1e-12 {
                av.get(r, c) / sigma[c]
            } else {
                0.0
            }
        });
        Ok(Svd { u, sigma, v })
    } else {
        let at = a.transpose();
        let sv = thin_svd(&at)?;
        Ok(Svd {
            u: sv.v,
            sigma: sv.sigma,
            v: sv.u,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-10));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(DecompError::NotPositiveDefinite));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a), Err(DecompError::NotSquare));
    }

    #[test]
    fn cholesky_solve_known_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = [1.0, 2.0];
        let x = cholesky_solve(&a, &b).unwrap();
        // Verify A x = b.
        let ax = a.matvec(&x);
        assert!(approx(ax[0], 1.0, 1e-12));
        assert!(approx(ax[1], 2.0, 1e-12));
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!(approx(vals[0], 7.0, 1e-10));
        assert!(approx(vals[1], 3.0, 1e-10));
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = (vecs.get(0, 0), vecs.get(1, 0));
        assert!(approx(v0.0.abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8));
        assert!(approx((v0.0 - v0.1).abs(), 0.0, 1e-8));
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[5.0, 1.0, 0.5, 0.2],
            &[1.0, 4.0, 0.3, 0.1],
            &[0.5, 0.3, 3.0, 0.4],
            &[0.2, 0.1, 0.4, 2.0],
        ]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        // A = V diag(λ) Vᵀ
        let lam = Matrix::from_fn(4, 4, |r, c| if r == c { vals[r] } else { 0.0 });
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8));
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(5, 5, |r, c| 1.0 / (1.0 + (r as f64 - c as f64).abs()));
        let (_, vecs) = symmetric_eigen(&a).unwrap();
        let vtv = vecs.transpose().matmul(&vecs);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(vtv.get(i, j), expect, 1e-8));
            }
        }
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let svd = thin_svd(&a).unwrap();
        // A = U Σ Vᵀ
        let sig = Matrix::from_fn(2, 2, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..4 {
            for j in 0..2 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn svd_reconstructs_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0, -1.0], &[0.5, 3.0, 1.0, 0.0]]);
        let svd = thin_svd(&a).unwrap();
        let k = svd.sigma.len();
        let sig = Matrix::from_fn(k, k, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..2 {
            for j in 0..4 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn svd_singular_values_descending_nonnegative() {
        let a = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f64 * 0.7).cos());
        let svd = thin_svd(&a).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_rank_deficient() {
        // Second column is 2x the first: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = thin_svd(&a).unwrap();
        assert!(
            svd.sigma[1] < 1e-8,
            "second singular value {}",
            svd.sigma[1]
        );
        let sig = Matrix::from_fn(2, 2, |r, c| if r == c { svd.sigma[r] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..3 {
            for j in 0..2 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-7));
            }
        }
    }
}

/// QR decomposition via Householder reflections.
///
/// Returns `(Q, R)` with `A = QR`, `Q` orthogonal (`m × m`) and `R` upper
/// triangular (`m × n`). Used for numerically robust least squares when the
/// normal equations of ridge regression would be too ill-conditioned.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    for k in 0..n.min(m.saturating_sub(1)) {
        // Householder vector for column k below the diagonal.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r.get(i, k) * r.get(i, k);
        }
        let norm_x = norm_x.sqrt();
        if norm_x < 1e-300 {
            continue;
        }
        let alpha = -r.get(k, k).signum() * norm_x;
        let mut v = vec![0.0; m];
        for i in k..m {
            v[i] = r.get(i, k);
        }
        v[k] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        // R ← (I − 2vvᵀ/‖v‖²) R
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let s = 2.0 * dot / vnorm2;
            for i in k..m {
                r.set(i, j, r.get(i, j) - s * v[i]);
            }
        }
        // Q ← Q (I − 2vvᵀ/‖v‖²)
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q.get(i, j) * v[j];
            }
            let s = 2.0 * dot / vnorm2;
            for j in k..m {
                q.set(i, j, q.get(i, j) - s * v[j]);
            }
        }
    }
    // Clean tiny sub-diagonal residue.
    for i in 0..m {
        for j in 0..n.min(i) {
            r.set(i, j, 0.0);
        }
    }
    (q, r)
}

/// Least-squares solution of `A x ≈ b` via QR (minimises `‖Ax − b‖₂`).
/// Requires `A` to have full column rank (`m ≥ n`).
pub fn qr_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    let (m, n) = a.shape();
    assert_eq!(m, b.len(), "qr_least_squares: rhs length mismatch");
    if m < n {
        return Err(DecompError::NotSquare);
    }
    let (q, r) = qr(a);
    // x solves R[..n,..n] x = (Qᵀ b)[..n].
    let qtb: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| q.get(i, j) * b[i]).sum())
        .collect();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for k in (i + 1)..n {
            s -= r.get(i, k) * x[k];
        }
        let d = r.get(i, i);
        if d.abs() < 1e-12 {
            return Err(DecompError::NotPositiveDefinite);
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod qr_tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn qr_reconstructs() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[1.0, 3.0, -2.0],
            &[0.0, 1.0, 4.0],
            &[-1.0, 0.5, 1.0],
        ]);
        let (q, r) = qr(&a);
        let rec = q.matmul(&r);
        for i in 0..4 {
            for j in 0..3 {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-10), "({i},{j})");
            }
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f64 * 0.77).sin());
        let (q, _) = qr(&a);
        let qtq = q.transpose().matmul(&q);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(qtq.get(i, j), expect, 1e-10), "({i},{j})");
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(4, 4, |r, c| ((r + 2 * c) as f64).cos());
        let (_, r) = qr(&a);
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined consistent system.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let x_true = [3.0, -2.0];
        let b: Vec<f64> = (0..4)
            .map(|i| a.get(i, 0) * x_true[0] + a.get(i, 1) * x_true[1])
            .collect();
        let x = qr_least_squares(&a, &b).unwrap();
        assert!(approx(x[0], 3.0, 1e-10));
        assert!(approx(x[1], -2.0, 1e-10));
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Full-column-rank design: polynomial basis in r.
        let a = Matrix::from_fn(8, 3, |r, c| (r as f64 + 1.0).powi(c as i32));
        let b: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).cos()).collect();
        let x_qr = qr_least_squares(&a, &b).unwrap();
        // Normal equations via Cholesky.
        let atb = a.transpose().matvec(&b);
        let x_ne = cholesky_solve(&a.gram(), &atb).unwrap();
        for (p, q_) in x_qr.iter().zip(&x_ne) {
            assert!(approx(*p, *q_, 1e-8), "{p} vs {q_}");
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(qr_least_squares(&a, &[0.0, 0.0]).is_err());
    }
}
