//! Principal component analysis, via the symmetric eigendecomposition of
//! the covariance matrix. Used to project 128-d node embeddings to 2-D for
//! the embedding-map diagnostics.

use crate::decomp::{symmetric_eigen, DecompError};
use crate::matrix::Matrix;

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data.
    pub means: Vec<f64>,
    /// Principal axes, `d × k` (columns are components, descending
    /// variance).
    pub components: Matrix,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a `k`-component PCA on the rows of `x`.
    pub fn fit(x: &Matrix, k: usize) -> Result<Pca, DecompError> {
        let (n, d) = x.shape();
        assert!(n > 1, "Pca::fit: need at least two rows");
        let k = k.min(d);
        let centred = x.center_columns();
        let cov = centred.gram().scale(1.0 / (n as f64 - 1.0));
        let (evals, evecs) = symmetric_eigen(&cov)?;
        let components = Matrix::from_fn(d, k, |r, c| evecs.get(r, c));
        Ok(Pca {
            means: x.col_means(),
            components,
            explained_variance: evals.into_iter().take(k).map(|e| e.max(0.0)).collect(),
        })
    }

    /// Projects rows of `x` onto the fitted components (`n × k`).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "Pca::transform: width mismatch");
        let centred = Matrix::from_fn(x.rows(), x.cols(), |r, c| x.get(r, c) - self.means[c]);
        centred.matmul(&self.components)
    }

    /// Fraction of total variance captured by the kept components.
    pub fn explained_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f64>() / total_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along a known direction.
    fn anisotropic(n: usize) -> Matrix {
        Matrix::from_fn(n, 3, |r, c| {
            let t = r as f64 / n as f64 * 20.0 - 10.0;
            let noise = ((r * 7 + c * 13) % 11) as f64 / 11.0 - 0.5;
            match c {
                0 => t + noise * 0.1,       // dominant direction
                1 => t * 0.5 + noise * 0.1, // correlated
                _ => noise,                 // pure noise
            }
        })
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let x = anisotropic(100);
        let pca = Pca::fit(&x, 2).unwrap();
        // The first axis should load mostly on columns 0 and 1.
        let a0 = pca.components.get(0, 0).abs();
        let a1 = pca.components.get(1, 0).abs();
        let a2 = pca.components.get(2, 0).abs();
        assert!(a0 > a2 * 5.0, "a0 {a0} a2 {a2}");
        assert!(a1 > a2 * 2.0, "a1 {a1} a2 {a2}");
    }

    #[test]
    fn explained_variance_descending() {
        let x = anisotropic(80);
        let pca = Pca::fit(&x, 3).unwrap();
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn transform_shape_and_centering() {
        let x = anisotropic(50);
        let pca = Pca::fit(&x, 2).unwrap();
        let z = pca.transform(&x);
        assert_eq!(z.shape(), (50, 2));
        // Projections of centred data have ~zero mean.
        let means = z.col_means();
        assert!(means.iter().all(|m| m.abs() < 1e-9), "{means:?}");
    }

    #[test]
    fn reconstruction_possible_with_all_components() {
        let x = anisotropic(40);
        let pca = Pca::fit(&x, 3).unwrap();
        let z = pca.transform(&x);
        // x ≈ z Wᵀ + mean.
        let rec = z.matmul(&pca.components.transpose());
        for r in 0..40 {
            for c in 0..3 {
                let val = rec.get(r, c) + pca.means[c];
                assert!((val - x.get(r, c)).abs() < 1e-8);
            }
        }
    }
}
