//! Vector distances and similarities used for dataset–dataset edges.
//!
//! The paper quantifies dataset similarity as the *correlation distance*
//! between probe-network embeddings (§IV-B2) and turns `1 − distance` into
//! the weight of the dataset–dataset edges.

use crate::matrix::{dot, norm};
use crate::stats::mean;

/// Euclidean distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; 0 for zero vectors.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Correlation distance `1 − corr(a, b)` in `[0, 2]`.
///
/// This is SciPy's `correlation` metric: the cosine distance between the
/// mean-centred vectors. Returns 1 (maximal uncertainty) when either vector
/// is constant.
pub fn correlation_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation_distance: length mismatch");
    let ma = mean(a);
    let mb = mean(b);
    let ca: Vec<f64> = a.iter().map(|x| x - ma).collect();
    let cb: Vec<f64> = b.iter().map(|x| x - mb).collect();
    let na = norm(&ca);
    let nb = norm(&cb);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - (dot(&ca, &cb) / (na * nb)).clamp(-1.0, 1.0)
}

/// Similarity derived from correlation distance, mapped into `[0, 1]`:
/// `1 − dist/2` so identical vectors score 1 and anti-correlated score 0.
pub fn correlation_similarity(a: &[f64], b: &[f64]) -> f64 {
    1.0 - correlation_distance(a, b) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn euclidean_known() {
        assert!(approx(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0));
        assert!(approx(euclidean(&[1.0], &[1.0]), 0.0));
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        assert!(approx(cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]), 1.0));
        assert!(approx(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]), 0.0));
        assert!(approx(cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]), -1.0));
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert!(approx(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0));
    }

    #[test]
    fn correlation_distance_identical_is_zero() {
        let a = [1.0, 5.0, 3.0, 2.0];
        assert!(approx(correlation_distance(&a, &a), 0.0));
        // Affine transforms of a vector are perfectly correlated.
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 7.0).collect();
        assert!(approx(correlation_distance(&a, &b), 0.0));
    }

    #[test]
    fn correlation_distance_anticorrelated_is_two() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!(approx(correlation_distance(&a, &b), 2.0));
    }

    #[test]
    fn correlation_distance_constant_is_one() {
        assert!(approx(
            correlation_distance(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            1.0
        ));
    }

    #[test]
    fn correlation_similarity_in_unit_interval() {
        let a = [1.0, -2.0, 0.5, 4.0];
        let b = [0.3, 1.1, -0.7, 2.0];
        let s = correlation_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert!(approx(correlation_similarity(&a, &a), 1.0));
    }
}
