//! Scoped worker pools shared by the runner and the blocked Jacobi sweeps.
//!
//! Two shapes of data-parallel work appear in this repo:
//!
//! * a flat list of independent items ([`drain_indexed`] — the evaluation
//!   runner's job drain, also re-exported as
//!   `transfergraph::runner::drain_indexed`), and
//! * a sequence of *rounds*, where items within a round are independent but
//!   round `r + 1` must not start before round `r` has fully finished
//!   ([`drain_rounds`] — the one-sided Jacobi rotation schedule, where each
//!   round is a set of disjoint column pairs).
//!
//! Both degenerate to plain sequential loops when `workers <= 1`, so callers
//! can use one code path and let the worker count decide.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Drains `count` independent work items across `workers` scoped threads,
/// each item claimed from an atomic counter so a slow item never stalls the
/// rest behind a static partition. `workers <= 1` (or a single item)
/// degenerates to a sequential loop.
///
/// Items must be order-insensitive: the evaluation runner writes results
/// into per-index slots and `Workbench::warm_logme` fills a deterministic
/// cache, so both are safe under any interleaving.
pub fn drain_indexed(count: usize, workers: usize, work: impl Fn(usize) + Sync) {
    let workers = workers.clamp(1, count.max(1));
    if workers == 1 {
        for i in 0..count {
            work(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                work(i);
            });
        }
    });
}

/// Runs `round_sizes.len()` sequential rounds over one pool of `workers`
/// scoped threads. Round `r` consists of items `0..round_sizes[r]`, each
/// executed exactly once as `work(r, item)`; a [`Barrier`] between rounds
/// guarantees every item of round `r` finishes before any item of round
/// `r + 1` starts.
///
/// Items are assigned statically (`item % workers`), so which thread runs
/// which item is deterministic — callers whose items are mutually disjoint
/// within a round (the Jacobi rotation schedule) therefore produce
/// bit-identical results at any worker count. `workers <= 1` degenerates to
/// nested sequential loops with no threads or barriers.
pub fn drain_rounds(round_sizes: &[usize], workers: usize, work: impl Fn(usize, usize) + Sync) {
    let widest = round_sizes.iter().copied().max().unwrap_or(0);
    let workers = workers.clamp(1, widest.max(1));
    if workers == 1 {
        for (round, &size) in round_sizes.iter().enumerate() {
            for item in 0..size {
                work(round, item);
            }
        }
        return;
    }
    let barrier = Barrier::new(workers);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let barrier = &barrier;
            let work = &work;
            scope.spawn(move || {
                for (round, &size) in round_sizes.iter().enumerate() {
                    let mut item = w;
                    while item < size {
                        work(round, item);
                        item += workers;
                    }
                    barrier.wait();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn drain_indexed_visits_every_index_exactly_once() {
        for workers in [1, 4, 16] {
            let counts: Vec<AtomicU32> = (0..53).map(|_| AtomicU32::new(0)).collect();
            drain_indexed(counts.len(), workers, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
        drain_indexed(0, 8, |_| unreachable!());
    }

    #[test]
    fn drain_rounds_visits_every_item_exactly_once() {
        let sizes = [3usize, 0, 7, 1, 12];
        for workers in [1, 3, 8] {
            let counts: Vec<Vec<AtomicU32>> = sizes
                .iter()
                .map(|&s| (0..s).map(|_| AtomicU32::new(0)).collect())
                .collect();
            drain_rounds(&sizes, workers, |r, i| {
                counts[r][i].fetch_add(1, Ordering::Relaxed);
            });
            for row in &counts {
                assert!(row.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            }
        }
        drain_rounds(&[], 4, |_, _| unreachable!());
    }

    #[test]
    fn drain_rounds_never_overlaps_rounds() {
        // Each item checks that every item of the previous round already ran.
        // SeqCst so the per-item increments are visible across the barrier in
        // a way the assertion below can rely on.
        let sizes = [5usize, 5, 5, 5];
        let done: Vec<AtomicU32> = sizes.iter().map(|_| AtomicU32::new(0)).collect();
        drain_rounds(&sizes, 4, |r, _| {
            if r > 0 {
                let prev = done[r - 1].load(Ordering::SeqCst);
                assert_eq!(prev, sizes[r - 1] as u32, "round {r} started early");
            }
            done[r].fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn drain_rounds_static_assignment_is_deterministic() {
        // The (round, item) -> worker map is a pure function, so two runs
        // record identical per-item observation orders when items write to
        // disjoint slots.
        let sizes = [8usize, 8];
        let run = || {
            let slots: Vec<AtomicU32> = (0..16).map(|_| AtomicU32::new(0)).collect();
            drain_rounds(&sizes, 4, |r, i| {
                slots[r * 8 + i].store((r * 8 + i) as u32 + 1, Ordering::Relaxed);
            });
            slots
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
