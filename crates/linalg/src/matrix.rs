//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// Sizes in this workspace are small (hundreds of rows, at most a few
/// thousand), so the implementation favours clarity and cache-friendly
/// row-major loops over blocking or SIMD.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = (0..self.cols.min(8))
                .map(|c| format!("{:9.4}", self.get(r, c)))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices (all must have equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has ragged length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols, "get({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols, "set({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the i-k-j loop order so the inner loop streams both operand rows.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose (both operands
    /// share their row count: `self` is `n × k`, `other` is `n × m`, the
    /// product is `k × m`).
    ///
    /// This is the batched-projection kernel of LogME (`Z = YᵀU` over the
    /// one-hot label matrix) and is tuned for that shape:
    ///
    /// * **row streaming** — the reduction dimension `n` is the outer loop,
    ///   so each step reads one contiguous row of each operand and updates
    ///   the output with contiguous axpy rows (no strided column walks);
    /// * **output blocking** — when the output is wider than
    ///   [`Self::AT_B_BLOCK`] columns it is computed one column tile at a
    ///   time, keeping the active output tile plus one row slice of `other`
    ///   cache-resident for the whole pass over `n`;
    /// * **sparsity skip** — rows of `self` contribute nothing where their
    ///   entry is exactly `0.0` (e.g. one-hot label matrices touch exactly
    ///   one output row per sample), so those axpys are skipped.
    ///
    /// **Fixed summation order:** every output element accumulates its `n`
    /// products in ascending row order, *independent of the block size* —
    /// blocking only tiles the output, never the reduction. Skipping an
    /// exactly-zero multiplier is bit-neutral too: with finite operands the
    /// skipped product is `±0.0`, and adding `±0.0` to a partial sum that
    /// started at `+0.0` can never change its bits. The result is therefore
    /// bit-identical to the naive `self.transpose().matmul(other)` loop,
    /// which the unit tests assert.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at_b: {}x{} vs {}x{} (row counts must match)",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, m);
        for j0 in (0..m).step_by(Self::AT_B_BLOCK) {
            let j1 = (j0 + Self::AT_B_BLOCK).min(m);
            for r in 0..n {
                let arow = self.row(r);
                let brow = &other.row(r)[j0..j1];
                for (i, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut out.row_mut(i)[j0..j1];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Output-column tile width of [`Matrix::matmul_at_b`]: 256 columns of
    /// `f64` (2 KiB per output row slice) keeps a `k × 256` tile plus the
    /// streamed operand rows inside L2 for every `k` that occurs here.
    pub const AT_B_BLOCK: usize = 256;

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Gram matrix `selfᵀ * self` (symmetric, cols x cols), exploiting
    /// symmetry to halve the work.
    ///
    /// Streams one input row at a time: each row is rank-1-accumulated into
    /// the upper triangle, so the row stays in L1 across the whole `i, j`
    /// update instead of the column-strided walk a per-entry dot product
    /// would do. Each output entry still accumulates its `n` products in
    /// ascending row order, so the result is bit-identical to the naive
    /// per-entry loop.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut out = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for (i, &xi) in row.iter().enumerate() {
                let upper = &mut out.data[i * d + i..i * d + d];
                for (o, &xj) in upper.iter_mut().zip(&row[i..]) {
                    *o += xi * xj;
                }
            }
        }
        // Mirror the upper triangle (exact copies, same bits).
        for i in 0..d {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        out
    }

    /// Vertically stacks two matrices with equal column counts.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, &x) in means.iter_mut().zip(self.row(r)) {
                *m += x;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Returns a new matrix with each column mean-centred.
    pub fn center_columns(&self) -> Matrix {
        let means = self.col_means();
        Matrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c) - means[c])
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `a += s * b` (axpy).
#[inline]
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_shape() {
        let a = Matrix::zeros(2, 7);
        assert_eq!(a.transpose().shape(), (7, 2));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        let v = vec![3.0, 4.0];
        let mv = a.matvec(&v);
        assert!(approx(mv[0], -1.0));
        assert!(approx(mv[1], 9.5));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g.get(i, j), g2.get(i, j)));
            }
        }
    }

    #[test]
    fn gram_row_streaming_is_bitwise_equal_to_naive_order() {
        // The row-streamed gram must accumulate each entry in the same
        // ascending-row order as the historical per-entry dot product, so
        // the two are bit-identical, not merely close.
        let a = Matrix::from_fn(37, 9, |r, c| ((r * 9 + c) as f64 * 0.7311).sin() * 10.0);
        let g = a.gram();
        for i in 0..9 {
            for j in i..9 {
                let mut s = 0.0;
                for r in 0..37 {
                    s += a.get(r, i) * a.get(r, j);
                }
                assert_eq!(g.get(i, j).to_bits(), s.to_bits(), "({i},{j})");
                assert_eq!(g.get(j, i).to_bits(), s.to_bits(), "({j},{i})");
            }
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f64).sin());
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn center_columns_zero_mean() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 20.0]]);
        let c = a.center_columns();
        let means = c.col_means();
        assert!(approx(means[0], 0.0));
        assert!(approx(means[1], 0.0));
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert_eq!(a.hstack(&b).shape(), (2, 7));
        let c = Matrix::zeros(5, 3);
        assert_eq!(a.vstack(&c).shape(), (7, 3));
    }

    #[test]
    fn hstack_preserves_values() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = a.hstack(&b);
        assert_eq!(h.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 3, |r, c| (r * c) as f64);
        let s = &(&a + &b) - &b;
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(s.get(i, j), a.get(i, j)));
            }
        }
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!(approx(a.frobenius_norm(), 5.0));
    }

    /// Naive, skip-free AᵀB: ascending-row dot per output element. The
    /// reference order the blocked kernel must reproduce bit-for-bit.
    fn at_b_naive(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.cols(), b.cols(), |i, j| {
            let mut s = 0.0;
            for r in 0..a.rows() {
                s += a.get(r, i) * b.get(r, j);
            }
            s
        })
    }

    #[test]
    fn matmul_at_b_matches_transpose_matmul() {
        let a = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) as f64 * 0.31).sin());
        let b = Matrix::from_fn(7, 5, |r, c| ((r * 5 + c) as f64 * 0.17).cos());
        assert_eq!(a.matmul_at_b(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_at_b_bit_identical_to_naive_dot_across_blocks() {
        // Output wider than one tile: blocking must not change any bit of
        // the ascending-row reduction.
        let cols = Matrix::AT_B_BLOCK + 37;
        let a = Matrix::from_fn(23, 4, |r, c| ((r * 7 + c) as f64 * 0.113).sin() * 1e3);
        let b = Matrix::from_fn(23, cols, |r, c| ((r * 31 + c) as f64 * 0.071).cos() / 3.0);
        let blocked = a.matmul_at_b(&b);
        let naive = at_b_naive(&a, &b);
        assert_eq!(blocked.shape(), (4, cols));
        for i in 0..4 {
            for j in 0..cols {
                assert_eq!(
                    blocked.get(i, j).to_bits(),
                    naive.get(i, j).to_bits(),
                    "bit mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matmul_at_b_zero_skip_is_bit_neutral() {
        // One-hot left operand: the sparsity skip must give the same bits
        // as accumulating the explicit zero products.
        let onehot = Matrix::from_fn(12, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(12, 6, |r, c| ((r + c) as f64 * 0.59).sin() - 0.3);
        let skipped = onehot.matmul_at_b(&b);
        let dense = at_b_naive(&onehot, &b);
        for i in 0..3 {
            for j in 0..6 {
                assert_eq!(skipped.get(i, j).to_bits(), dense.get(i, j).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul_at_b")]
    fn matmul_at_b_row_mismatch_panics() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul_at_b(&b);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 1, f64::NAN);
        assert!(a.has_non_finite());
    }
}
