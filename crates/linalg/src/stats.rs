//! Statistics: means, variances, ranks, and the correlation coefficients the
//! paper evaluates with (Pearson's τ, Eq. 1; Spearman as a robustness check).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum and maximum of a non-empty slice.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// Pearson's correlation coefficient (the paper's Eq. 1).
///
/// Returns `None` when either input is constant (the coefficient is
/// undefined) or the lengths differ / are below 2.
pub fn pearson(t: &[f64], s: &[f64]) -> Option<f64> {
    if t.len() != s.len() || t.len() < 2 {
        return None;
    }
    let mt = mean(t);
    let ms = mean(s);
    let mut num = 0.0;
    let mut dt = 0.0;
    let mut ds = 0.0;
    for (&a, &b) in t.iter().zip(s) {
        let xa = a - mt;
        let xb = b - ms;
        num += xa * xb;
        dt += xa * xa;
        ds += xb * xb;
    }
    if dt <= 0.0 || ds <= 0.0 {
        return None;
    }
    // Cauchy–Schwarz bounds |num| ≤ √(dt·ds) mathematically, but with
    // near-constant inputs the rounded quotient can overshoot ±1 — clamp so
    // downstream tolerance checks (and rank correlations built on top) see a
    // valid coefficient.
    Some((num / (dt * ds).sqrt()).clamp(-1.0, 1.0))
}

/// Fractional ranks with mid-rank tie handling (1-based).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    // total_cmp: a total order even in the presence of NaN, so tied blocks
    // are always contiguous and the mid-rank assignment below is exhaustive.
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Tied block [i, j]: assign the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on fractional ranks).
pub fn spearman(t: &[f64], s: &[f64]) -> Option<f64> {
    if t.len() != s.len() || t.len() < 2 {
        return None;
    }
    pearson(&ranks(t), &ranks(s))
}

/// Min-max normalisation into `[0, 1]`. Constant slices map to all-0.5.
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    match min_max(xs) {
        Some((lo, hi)) if hi > lo => xs.iter().map(|x| (x - lo) / (hi - lo)).collect(),
        Some(_) => vec![0.5; xs.len()],
        None => Vec::new(),
    }
}

/// Indices of the `k` largest values, descending. Ties resolve to the lower
/// index first (deterministic).
pub fn top_k_indices(xs: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[b]
            .partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k.min(xs.len()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx(mean(&xs), 5.0));
        assert!(approx(variance(&xs), 4.0));
        assert!(approx(std_dev(&xs), 2.0));
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!(approx(pearson(&x, &y).unwrap(), 1.0));
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!(approx(pearson(&x, &z).unwrap(), -1.0));
    }

    #[test]
    fn pearson_constant_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[5.0, 5.0]), None);
    }

    #[test]
    fn pearson_length_mismatch_is_none() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn pearson_bounded() {
        // Deterministic pseudo-random-ish data.
        let x: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 11) % 17) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn ranks_simple() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_handle_ties_with_midrank() {
        // 10 appears twice at ranks 1 and 2 → both get 1.5.
        assert_eq!(ranks(&[10.0, 10.0, 20.0]), vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| v.exp()).collect();
        assert!(approx(spearman(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn min_max_normalize_range() {
        let out = min_max_normalize(&[5.0, 10.0, 7.5]);
        assert!(approx(out[0], 0.0));
        assert!(approx(out[1], 1.0));
        assert!(approx(out[2], 0.5));
    }

    #[test]
    fn min_max_normalize_constant() {
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn top_k_indices_ordering() {
        let xs = [0.1, 0.9, 0.5, 0.9, 0.2];
        assert_eq!(top_k_indices(&xs, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&xs, 10).len(), 5);
    }

    #[test]
    fn min_max_empty() {
        assert_eq!(min_max(&[]), None);
    }

    /// The shrunk input pinned in `tests/property_tests.proptest-regressions`:
    /// tied values must keep every rank-based invariant exact.
    #[test]
    fn pinned_regression_tied_values() {
        let xs = [41.017265912619436, 0.0, 0.0, 43.86568159681817];
        // Mid-rank tie handling: the two zeros share rank 1.5.
        assert_eq!(ranks(&xs), vec![3.0, 1.5, 1.5, 4.0]);
        // Rank sum invariant n(n+1)/2 holds through the tied block.
        assert_eq!(ranks(&xs).iter().sum::<f64>(), 10.0);
        // Spearman is invariant under strictly monotone transforms even when
        // the transform maps the tied block through non-linear territory.
        let ys: Vec<f64> = xs.iter().map(|&x| x * 2.0 + 1.0).collect();
        let zs: Vec<f64> = ys.iter().map(|&y| (y / 25.0).exp()).collect();
        let a = spearman(&xs, &ys).unwrap();
        let b = spearman(&xs, &zs).unwrap();
        assert!((a - b).abs() < 1e-12, "spearman drifted: {a} vs {b}");
        assert_eq!(a, 1.0);
    }

    #[test]
    fn pearson_never_overshoots_unit_interval() {
        // Near-constant vectors: catastrophic cancellation used to let the
        // rounded coefficient exceed 1.0.
        let t = [1.0, 1.0 + 1e-15, 1.0 + 2e-15, 1.0 - 1e-15];
        let s = [2.0, 2.0 + 2e-15, 2.0 + 4e-15, 2.0 - 2e-15];
        if let Some(r) = pearson(&t, &s) {
            assert!((-1.0..=1.0).contains(&r), "out of range: {r}");
        }
    }

    #[test]
    fn ranks_total_order_handles_signed_zero() {
        // -0.0 and 0.0 compare equal: one tied block, shared mid-rank.
        assert_eq!(ranks(&[-0.0, 0.0, 1.0]), vec![1.5, 1.5, 3.0]);
    }
}
