//! Bit-identity lock on the full-graph GNN trainers.
//!
//! The minibatch/inductive drivers live *next to* the full-graph path,
//! which stays the parity reference: any refactor that touches the dense
//! builders or the training loop must leave these embeddings bit-for-bit
//! unchanged. The expected values are FNV-1a hashes of the raw f64 bit
//! patterns captured before the block-aware aggregation layer landed.

use tg_embed::{Gat, Gcn, GraphLearner, GraphSage};
use tg_graph::{EdgeKind, Graph, NodeKind};
use tg_linalg::Matrix;
use tg_rng::Rng;
use tg_zoo::ModelId;

/// FNV-1a over the exact bit patterns of every matrix entry, row-major.
fn bits_hash(m: &Matrix) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in m.as_slice() {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A small deterministic graph: two 5-cliques joined by one bridge edge,
/// with varying edge weights so weighted aggregation is exercised.
fn bridged_cliques() -> Graph {
    let mut g = Graph::new();
    for i in 0..10 {
        g.add_node(NodeKind::Model(ModelId(i)));
    }
    for a in 0..5 {
        for b in (a + 1)..5 {
            let w = 0.5 + ((a * 5 + b) as f64) * 0.05;
            g.add_edge(a, b, w, EdgeKind::DatasetDataset);
            g.add_edge(
                a + 5,
                b + 5,
                1.0 - (b - a) as f64 * 0.07,
                EdgeKind::DatasetDataset,
            );
        }
    }
    g.add_edge(2, 7, 0.25, EdgeKind::DatasetDataset);
    g
}

fn features() -> Matrix {
    Matrix::from_fn(10, 6, |r, c| ((r * 7 + c * 3) as f64 * 0.29).sin())
}

#[test]
fn sage_full_graph_is_bit_identical() {
    let g = bridged_cliques();
    let sage = GraphSage {
        epochs: 25,
        ..GraphSage::with_dim(8)
    };
    let emb = sage.embed(&g, &features(), &mut Rng::seed_from_u64(42));
    assert_eq!(bits_hash(&emb), SAGE_HASH, "full-graph GraphSAGE drifted");
}

#[test]
fn gat_full_graph_is_bit_identical() {
    let g = bridged_cliques();
    let gat = Gat {
        epochs: 25,
        ..Gat::with_dim(8)
    };
    let emb = gat.embed(&g, &features(), &mut Rng::seed_from_u64(42));
    assert_eq!(bits_hash(&emb), GAT_HASH, "full-graph GAT drifted");
}

#[test]
fn gcn_full_graph_is_bit_identical() {
    let g = bridged_cliques();
    let gcn = Gcn {
        epochs: 25,
        ..Gcn::with_dim(8)
    };
    let emb = gcn.embed(&g, &features(), &mut Rng::seed_from_u64(42));
    assert_eq!(bits_hash(&emb), GCN_HASH, "full-graph GCN drifted");
}

// Captured from the pre-refactor trainers; see module docs.
const SAGE_HASH: u64 = 12752504627612935361;
const GAT_HASH: u64 = 16642683965507637302;
const GCN_HASH: u64 = 4090431410780378604;
