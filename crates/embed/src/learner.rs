//! The [`GraphLearner`] interface.

use tg_graph::Graph;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// A graph learner: consumes the constructed graph (and, for GNNs, node
/// features) and produces one embedding row per node.
pub trait GraphLearner {
    /// Human-readable name used in experiment tables (e.g. `N2V+`).
    fn name(&self) -> &'static str;

    /// Trains on `graph` and returns an `num_nodes × dim` embedding matrix.
    ///
    /// `features` is the node-feature matrix (`num_nodes × f`). Random-walk
    /// learners ignore it (the paper notes Node2Vec learns the link
    /// structure only); GraphSAGE and GAT consume it.
    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix;

    /// Output embedding dimension.
    fn dim(&self) -> usize;
}

/// Enumeration of the four learners for experiment dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LearnerKind {
    /// Node2Vec (structure only).
    Node2Vec,
    /// Node2Vec+ (edge-weight aware walks).
    Node2VecPlus,
    /// GraphSAGE mean aggregator.
    GraphSage,
    /// Graph attention network.
    Gat,
    /// Graph convolutional network (related-work extension; not in the
    /// paper's Fig. 9 line-up).
    Gcn,
    /// GraphSAGE trained on neighbour-sampled minibatches (same
    /// architecture as [`LearnerKind::GraphSage`], inductive inference).
    GraphSageMini,
    /// GAT trained on neighbour-sampled minibatches.
    GatMini,
}

impl LearnerKind {
    /// The paper's four learners, in the order Fig. 9 lists them.
    pub const ALL: [LearnerKind; 4] = [
        LearnerKind::GraphSage,
        LearnerKind::Gat,
        LearnerKind::Node2VecPlus,
        LearnerKind::Node2Vec,
    ];

    /// The paper's learners plus the GCN extension.
    pub const ALL_EXTENDED: [LearnerKind; 5] = [
        LearnerKind::GraphSage,
        LearnerKind::Gat,
        LearnerKind::Gcn,
        LearnerKind::Node2VecPlus,
        LearnerKind::Node2Vec,
    ];

    /// Short display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            LearnerKind::Node2Vec => "N2V",
            LearnerKind::Node2VecPlus => "N2V+",
            LearnerKind::GraphSage => "GraphSAGE",
            LearnerKind::Gat => "GAT",
            LearnerKind::Gcn => "GCN",
            LearnerKind::GraphSageMini => "GraphSAGE-mb",
            LearnerKind::GatMini => "GAT-mb",
        }
    }

    /// Instantiates the learner with the given embedding dimension.
    pub fn build(&self, dim: usize) -> Box<dyn GraphLearner> {
        match self {
            LearnerKind::Node2Vec => Box::new(crate::Node2Vec::with_dim(dim)),
            LearnerKind::Node2VecPlus => Box::new(crate::Node2VecPlus::with_dim(dim)),
            LearnerKind::GraphSage => Box::new(crate::GraphSage::with_dim(dim)),
            LearnerKind::Gat => Box::new(crate::Gat::with_dim(dim)),
            LearnerKind::Gcn => Box::new(crate::Gcn::with_dim(dim)),
            LearnerKind::GraphSageMini => Box::new(crate::MiniGraphSage::with_dim(dim)),
            LearnerKind::GatMini => Box::new(crate::MiniGat::with_dim(dim)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper_labels() {
        assert_eq!(LearnerKind::Node2Vec.name(), "N2V");
        assert_eq!(LearnerKind::Node2VecPlus.name(), "N2V+");
        assert_eq!(LearnerKind::GraphSage.name(), "GraphSAGE");
        assert_eq!(LearnerKind::Gat.name(), "GAT");
    }

    #[test]
    fn build_produces_requested_dim() {
        for kind in LearnerKind::ALL_EXTENDED {
            let l = kind.build(32);
            assert_eq!(l.dim(), 32, "{}", kind.name());
        }
    }

    #[test]
    fn minibatch_kinds_build_and_name() {
        for (kind, name) in [
            (LearnerKind::GraphSageMini, "GraphSAGE-mb"),
            (LearnerKind::GatMini, "GAT-mb"),
        ] {
            assert_eq!(kind.name(), name);
            let l = kind.build(16);
            assert_eq!(l.dim(), 16);
            assert_eq!(l.name(), name);
        }
    }
}
