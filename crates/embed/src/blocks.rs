//! Block-aware aggregation: the single place where sampled
//! [`Block`]s become the small dense operators the GNN layers consume.
//!
//! The full-graph trainers build their O(n²) operators from
//! `tg_graph::adjacency`; the minibatch drivers build the *same* operators
//! restricted to a sampled block — a `num_dst × num_src` mean-aggregation
//! matrix for GraphSAGE and an attention mask for GAT. Keeping both
//! constructions next to each other is the point: one definition of the
//! aggregation semantics, two materialisations.

use tg_graph::Block;
use tg_linalg::Matrix;

/// Configuration of the minibatch training drivers, shared by GraphSAGE
/// and GAT.
#[derive(Clone, Debug)]
pub struct MinibatchConfig {
    /// Per-layer neighbour fanouts, innermost (feature-consuming) layer
    /// first. Adjusted to a driver's layer count by [`MinibatchConfig::fanouts_for`].
    pub fanouts: Vec<usize>,
    /// Link-prediction pairs per minibatch.
    pub batch: usize,
    /// Training epochs; `None` uses the learner's full-graph epoch count.
    pub epochs: Option<usize>,
}

impl Default for MinibatchConfig {
    fn default() -> Self {
        MinibatchConfig {
            fanouts: vec![10, 5],
            batch: 128,
            epochs: None,
        }
    }
}

impl MinibatchConfig {
    /// Reads `TG_SAGE_FANOUTS` (comma-separated, e.g. `10,5`) and
    /// `TG_SAGE_BATCH`; anything unset or unparsable keeps the default.
    pub fn from_env() -> Self {
        let mut cfg = MinibatchConfig::default();
        if let Ok(s) = std::env::var("TG_SAGE_FANOUTS") {
            let parsed: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&f| f >= 1)
                .collect();
            if !parsed.is_empty() {
                cfg.fanouts = parsed;
            }
        }
        if let Ok(s) = std::env::var("TG_SAGE_BATCH") {
            if let Ok(b) = s.trim().parse::<usize>() {
                if b >= 1 {
                    cfg.batch = b;
                }
            }
        }
        cfg
    }

    /// The fanout list adjusted to exactly `layers` entries: truncated if
    /// longer, extended with its last entry if shorter.
    pub fn fanouts_for(&self, layers: usize) -> Vec<usize> {
        let mut f = self.fanouts.clone();
        let last = *f.last().unwrap_or(&5);
        f.resize(layers, last);
        f.truncate(layers);
        f
    }
}

/// The block-restricted mean aggregator: `num_dst × num_src`, row `d`
/// holding `w(d,s) / Σ w(d,·)` over the block's sampled edges — the same
/// floor (`w.max(1e-9)`) and row-normalisation as
/// `tg_graph::adjacency::mean_adjacency`, restricted to the block.
pub(crate) fn block_mean_matrix(block: &Block) -> Matrix {
    let mut a = Matrix::zeros(block.num_dst(), block.num_src());
    for e in block.edges() {
        a.set(e.dst, e.src, a.get(e.dst, e.src) + e.weight.max(1e-9));
    }
    for d in 0..block.num_dst() {
        let s: f64 = a.row(d).iter().sum();
        if s > 0.0 {
            for c in 0..block.num_src() {
                a.set(d, c, a.get(d, c) / s);
            }
        }
    }
    a
}

/// The block-restricted attention mask: `num_dst × num_src`, 1 at
/// sampled edges plus the diagonal prefix (each destination attends to
/// itself — destinations are a prefix of the sources), matching
/// `tg_graph::adjacency::attention_mask` on the sampled subgraph.
pub(crate) fn block_attention_mask(block: &Block) -> Matrix {
    let mut m = Matrix::zeros(block.num_dst(), block.num_src());
    for d in 0..block.num_dst() {
        m.set(d, d, 1.0);
    }
    for e in block.edges() {
        m.set(e.dst, e.src, 1.0);
    }
    m
}

/// Rows of `features` for the given global node ids.
pub(crate) fn gather_rows(features: &Matrix, nodes: &[usize]) -> Matrix {
    Matrix::from_fn(nodes.len(), features.cols(), |r, c| {
        features.get(nodes[r], c)
    })
}

/// In-place ReLU.
pub(crate) fn relu_inplace(m: &mut Matrix) {
    for x in m.as_mut_slice() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Row-wise L2 normalisation matching `Tape::row_l2_normalize`: rows with
/// norm ≤ eps stay as they are.
pub(crate) fn row_l2_normalize_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let n: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            for c in 0..cols {
                row[c] /= n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{Csr, NeighborSampler};

    fn sample_one() -> Block {
        let g = tg_graph::fixtures::two_cliques();
        let csr = Csr::from_graph(&g);
        let sampler = NeighborSampler::new(vec![2], 11);
        sampler
            .sample_blocks(&csr, &[0, 4])
            .pop()
            .expect("one block")
    }

    #[test]
    fn mean_matrix_rows_sum_to_one_where_edges_exist() {
        let b = sample_one();
        let a = block_mean_matrix(&b);
        assert_eq!(a.shape(), (b.num_dst(), b.num_src()));
        for d in 0..b.num_dst() {
            let s: f64 = a.row(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {d} sums {s}");
        }
    }

    #[test]
    fn attention_mask_has_diagonal_prefix_and_edges() {
        let b = sample_one();
        let m = block_attention_mask(&b);
        for d in 0..b.num_dst() {
            assert_eq!(m.get(d, d), 1.0);
        }
        let ones: f64 = m.as_slice().iter().sum();
        assert_eq!(ones as usize, b.num_dst() + b.edges().len());
    }

    #[test]
    fn fanouts_for_resizes_both_ways() {
        let cfg = MinibatchConfig {
            fanouts: vec![8, 4],
            ..MinibatchConfig::default()
        };
        assert_eq!(cfg.fanouts_for(2), vec![8, 4]);
        assert_eq!(cfg.fanouts_for(3), vec![8, 4, 4]);
        assert_eq!(cfg.fanouts_for(1), vec![8]);
    }

    #[test]
    fn env_parsing_ignores_garbage() {
        // No env set in tests → defaults.
        let cfg = MinibatchConfig::default();
        assert_eq!(cfg.fanouts, vec![10, 5]);
        assert_eq!(cfg.batch, 128);
    }

    #[test]
    fn normalize_matches_tape_semantics() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        row_l2_normalize_inplace(&mut m);
        assert!((m.get(0, 0) - 0.6).abs() < 1e-12);
        assert_eq!(m.get(1, 0), 0.0);
    }
}
