//! Dynamic graph learning — the paper's §VII-G future-work item: "by
//! dynamically updating the graph learner, we extend TransferGraph to
//! support timely update of the model recommendation" (citing ROLAND).
//!
//! [`DynamicEmbedder`] maintains Node2Vec(+)-style embeddings over a graph
//! that receives new edges (fresh fine-tuning results arriving in the zoo).
//! Instead of retraining from scratch, each update
//! 1. inserts the edge into the graph,
//! 2. generates walks *rooted at the affected nodes and their neighbours*,
//! 3. warm-starts SGNS from the current embeddings at a reduced learning
//!    rate.
//!
//! The result: updates touch a local neighbourhood (tested below) at a
//! small fraction of full-retrain cost.

use crate::sgns::{SgnsConfig, SgnsModel};
use tg_graph::{generate_walks, EdgeKind, Graph, WalkConfig};
use tg_linalg::Matrix;
use tg_rng::Rng;

/// Incrementally maintained node embeddings.
pub struct DynamicEmbedder {
    graph: Graph,
    model: SgnsModel,
    walk_cfg: WalkConfig,
    /// Learning-rate scale for incremental refreshes (relative to initial
    /// training).
    pub refresh_lr_scale: f64,
    /// Walks per affected node during a refresh.
    pub refresh_walks: usize,
    /// SGNS epochs per refresh (1 keeps updates cheap).
    pub refresh_epochs: usize,
}

impl DynamicEmbedder {
    /// Builds the embedder and trains the initial embeddings from scratch.
    pub fn new(graph: Graph, walk_cfg: WalkConfig, sgns_cfg: SgnsConfig, rng: &mut Rng) -> Self {
        let mut model = SgnsModel::new(graph.num_nodes().max(1), sgns_cfg, rng);
        let walks = generate_walks(&graph, &walk_cfg, rng);
        model.train(&walks, rng, 1.0);
        DynamicEmbedder {
            graph,
            model,
            walk_cfg,
            refresh_lr_scale: 0.3,
            refresh_walks: 8,
            refresh_epochs: 1,
        }
    }

    /// Current embeddings (one row per node).
    pub fn embeddings(&self) -> &Matrix {
        self.model.embeddings()
    }

    /// The maintained graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Inserts a new positive edge (e.g. a freshly observed fine-tuning
    /// result) and refreshes the embeddings around it.
    pub fn insert_edge(&mut self, a: usize, b: usize, weight: f64, kind: EdgeKind, rng: &mut Rng) {
        self.graph.add_edge(a, b, weight, kind);
        self.refresh(&[a, b], rng);
    }

    /// Inserts a batch of edges with a *single* refresh over the union of
    /// affected nodes. For streaming workloads this is the economical mode:
    /// one local SGNS pass amortises over the whole batch, where per-edge
    /// refreshes would each pay the walk/train overhead.
    pub fn insert_edges(&mut self, edges: &[(usize, usize, f64, EdgeKind)], rng: &mut Rng) {
        if edges.is_empty() {
            return;
        }
        let mut seeds = Vec::with_capacity(edges.len() * 2);
        for &(a, b, weight, kind) in edges {
            self.graph.add_edge(a, b, weight, kind);
            seeds.push(a);
            seeds.push(b);
        }
        seeds.sort_unstable();
        seeds.dedup();
        self.refresh(&seeds, rng);
    }

    /// Warm-start refresh around the given seed nodes: walks rooted at the
    /// seeds and their direct neighbours, then a reduced-rate SGNS pass.
    pub fn refresh(&mut self, seeds: &[usize], rng: &mut Rng) {
        self.model.grow_to(self.graph.num_nodes(), rng);
        // Affected region: seeds + 1-hop neighbourhood.
        let mut region: Vec<usize> = seeds.to_vec();
        for &s in seeds {
            region.extend(self.graph.neighbors(s).map(|(n, _)| n));
        }
        region.sort_unstable();
        region.dedup();
        // Local walk corpus.
        let mut walks = Vec::with_capacity(region.len() * self.refresh_walks);
        for _ in 0..self.refresh_walks {
            for &start in &region {
                walks.push(single_local_walk(&self.graph, &self.walk_cfg, start, rng));
            }
        }
        self.model
            .train_with_epochs(&walks, rng, self.refresh_lr_scale, self.refresh_epochs);
    }
}

/// One first-order weighted/unweighted walk from `start` (the second-order
/// p/q bias matters little for short refresh walks; keeping it first-order
/// makes refreshes cheap).
fn single_local_walk(graph: &Graph, cfg: &WalkConfig, start: usize, rng: &mut Rng) -> Vec<usize> {
    let mut walk = Vec::with_capacity(cfg.walk_length);
    walk.push(start);
    let mut cur = start;
    let mut nexts = Vec::new();
    let mut weights = Vec::new();
    while walk.len() < cfg.walk_length {
        nexts.clear();
        weights.clear();
        for (n, w) in graph.neighbors(cur) {
            nexts.push(n);
            weights.push(if cfg.weighted { w.max(1e-6) } else { 1.0 });
        }
        if nexts.is_empty() {
            break;
        }
        cur = nexts[rng.categorical(&weights)];
        walk.push(cur);
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::NodeKind;
    use tg_linalg::distance::cosine_similarity;
    use tg_zoo::ModelId;

    /// Two 4-cliques plus an isolated node 8 that will join community B.
    fn fixture() -> Graph {
        let mut g = Graph::new();
        for i in 0..9 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(a, b, 1.0, EdgeKind::DatasetDataset);
                g.add_edge(a + 4, b + 4, 1.0, EdgeKind::DatasetDataset);
            }
        }
        g
    }

    fn embedder(rng: &mut Rng) -> DynamicEmbedder {
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 3,
            window: 3,
            negatives: 4,
            lr: 0.05,
        };
        let walks = WalkConfig {
            walks_per_node: 20,
            walk_length: 20,
            ..Default::default()
        };
        DynamicEmbedder::new(fixture(), walks, cfg, rng)
    }

    #[test]
    fn initial_training_matches_static_quality() {
        let mut rng = Rng::seed_from_u64(1);
        let e = embedder(&mut rng);
        let emb = e.embeddings();
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }

    #[test]
    fn inserting_edges_pulls_new_node_towards_its_community() {
        let mut rng = Rng::seed_from_u64(2);
        let mut e = embedder(&mut rng);
        let before = cosine_similarity(e.embeddings().row(8), e.embeddings().row(5));
        // Node 8 joins community B (nodes 4..8).
        for b in 4..8 {
            e.insert_edge(8, b, 1.0, EdgeKind::DatasetDataset, &mut rng);
        }
        let after_b = cosine_similarity(e.embeddings().row(8), e.embeddings().row(5));
        let after_a = cosine_similarity(e.embeddings().row(8), e.embeddings().row(0));
        assert!(
            after_b > before + 0.1,
            "node 8 should move towards community B: {before} → {after_b}"
        );
        assert!(after_b > after_a, "B {after_b} should beat A {after_a}");
    }

    #[test]
    fn refresh_perturbs_remote_nodes_less_than_local_ones() {
        let mut rng = Rng::seed_from_u64(3);
        let mut e = embedder(&mut rng);
        let before = e.embeddings().clone();
        // Update inside community B only.
        e.insert_edge(8, 4, 1.0, EdgeKind::DatasetDataset, &mut rng);
        let after = e.embeddings();
        let delta = |node: usize| tg_linalg::distance::euclidean(before.row(node), after.row(node));
        // Node 4 (touched) must move more than node 0 (remote community A;
        // only perturbed through negative sampling).
        assert!(
            delta(4) > delta(0),
            "local {:.4} should exceed remote {:.4}",
            delta(4),
            delta(0)
        );
    }

    #[test]
    fn batch_insert_matches_per_edge_semantics() {
        let mut rng = Rng::seed_from_u64(6);
        let mut e = embedder(&mut rng);
        let edges: Vec<(usize, usize, f64, EdgeKind)> = (4..8)
            .map(|b| (8, b, 1.0, EdgeKind::DatasetDataset))
            .collect();
        e.insert_edges(&edges, &mut rng);
        // All edges present; node 8 pulled towards community B.
        for b in 4..8 {
            assert!(e.graph().has_edge(8, b));
        }
        let to_b = cosine_similarity(e.embeddings().row(8), e.embeddings().row(5));
        let to_a = cosine_similarity(e.embeddings().row(8), e.embeddings().row(0));
        assert!(to_b > to_a, "B {to_b} should beat A {to_a}");
    }

    #[test]
    fn graph_grows_with_new_nodes() {
        let mut rng = Rng::seed_from_u64(4);
        let mut e = embedder(&mut rng);
        let new = {
            // Add a brand-new node then connect it.
            let g = &mut e.graph;
            g.add_node(NodeKind::Model(ModelId(99)))
        };
        e.insert_edge(new, 0, 0.9, EdgeKind::ModelDatasetAccuracy, &mut rng);
        assert_eq!(e.embeddings().rows(), e.graph().num_nodes());
    }
}
