//! Node2Vec (Grover & Leskovec, KDD 2016) and Node2Vec+ (Liu et al., 2023):
//! biased random walks + SGNS.

use crate::learner::GraphLearner;
use crate::sgns::{train_sgns, SgnsConfig};
use tg_graph::{generate_walks, Graph, WalkConfig};
use tg_linalg::Matrix;
use tg_rng::Rng;

/// Node2Vec: learns the link structure only (walk transitions ignore edge
/// weights, per the paper's §VII-D discussion).
#[derive(Clone, Debug)]
pub struct Node2Vec {
    /// Walk hyperparameters (`weighted` is forced to `false`).
    pub walks: WalkConfig,
    /// SGNS hyperparameters.
    pub sgns: SgnsConfig,
}

impl Node2Vec {
    /// Default configuration with the given embedding dimension.
    pub fn with_dim(dim: usize) -> Self {
        Node2Vec {
            walks: WalkConfig {
                weighted: false,
                ..Default::default()
            },
            sgns: SgnsConfig {
                dim,
                ..Default::default()
            },
        }
    }
}

impl GraphLearner for Node2Vec {
    fn name(&self) -> &'static str {
        "N2V"
    }

    fn dim(&self) -> usize {
        self.sgns.dim
    }

    fn embed(&self, graph: &Graph, _features: &Matrix, rng: &mut Rng) -> Matrix {
        let mut cfg = self.walks.clone();
        cfg.weighted = false;
        let walks = generate_walks(graph, &cfg, rng);
        train_sgns(&walks, graph.num_nodes(), &self.sgns, rng)
    }
}

/// Node2Vec+: walk transition probabilities additionally scale with edge
/// weights, so strong (high-accuracy / high-similarity) edges are traversed
/// more often.
#[derive(Clone, Debug)]
pub struct Node2VecPlus {
    /// Walk hyperparameters (`weighted` is forced to `true`).
    pub walks: WalkConfig,
    /// SGNS hyperparameters.
    pub sgns: SgnsConfig,
}

impl Node2VecPlus {
    /// Default configuration with the given embedding dimension.
    pub fn with_dim(dim: usize) -> Self {
        Node2VecPlus {
            walks: WalkConfig {
                weighted: true,
                ..Default::default()
            },
            sgns: SgnsConfig {
                dim,
                ..Default::default()
            },
        }
    }
}

impl GraphLearner for Node2VecPlus {
    fn name(&self) -> &'static str {
        "N2V+"
    }

    fn dim(&self) -> usize {
        self.sgns.dim
    }

    fn embed(&self, graph: &Graph, _features: &Matrix, rng: &mut Rng) -> Matrix {
        let mut cfg = self.walks.clone();
        cfg.weighted = true;
        let walks = generate_walks(graph, &cfg, rng);
        train_sgns(&walks, graph.num_nodes(), &self.sgns, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{EdgeKind, NodeKind};
    use tg_linalg::distance::cosine_similarity;
    use tg_zoo::ModelId;

    /// Barbell: two triangles {0,1,2}, {3,4,5} joined by a weak bridge 2-3.
    fn barbell() -> Graph {
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        let tri = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        for (a, b) in tri {
            g.add_edge(a, b, 1.0, EdgeKind::DatasetDataset);
        }
        g.add_edge(2, 3, 0.05, EdgeKind::DatasetDataset);
        g
    }

    #[test]
    fn node2vec_embeds_communities() {
        let g = barbell();
        let learner = Node2Vec::with_dim(16);
        let features = Matrix::zeros(6, 1);
        let emb = learner.embed(&g, &features, &mut Rng::seed_from_u64(1));
        assert_eq!(emb.shape(), (6, 16));
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }

    #[test]
    fn node2vec_plus_respects_weak_bridge_more() {
        // With weighted walks the weak bridge (0.05) is rarely crossed, so
        // communities separate at least as well as for the unweighted walk.
        let g = barbell();
        let features = Matrix::zeros(6, 1);
        let gap = |emb: &Matrix| {
            let within = (cosine_similarity(emb.row(0), emb.row(1))
                + cosine_similarity(emb.row(3), emb.row(4)))
                / 2.0;
            let cross = (cosine_similarity(emb.row(0), emb.row(4))
                + cosine_similarity(emb.row(1), emb.row(5)))
                / 2.0;
            within - cross
        };
        let e_plus = Node2VecPlus::with_dim(16).embed(&g, &features, &mut Rng::seed_from_u64(2));
        let gap_plus = gap(&e_plus);
        assert!(gap_plus > 0.2, "N2V+ community gap too small: {gap_plus}");
    }

    #[test]
    fn names_and_dims() {
        assert_eq!(Node2Vec::with_dim(64).name(), "N2V");
        assert_eq!(Node2VecPlus::with_dim(64).name(), "N2V+");
        assert_eq!(Node2Vec::with_dim(64).dim(), 64);
    }
}
