//! Graph attention network (Veličković et al., ICLR 2018) — the paper's
//! Eq. 5 — with masked self-attention, trained full-batch for link
//! prediction.

use crate::learner::GraphLearner;
use crate::linkpred::build_linkpred_set;
use tg_autograd::{xavier_init, Adam, Optimizer, ParamStore, Tape, Var};
use tg_graph::Graph;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// GAT configuration. The first layer uses `heads` attention heads with
/// concatenated outputs (as in the original GAT); the output layer uses a
/// single head.
#[derive(Clone, Debug)]
pub struct Gat {
    /// Output embedding dimension.
    pub dim: usize,
    /// Hidden width *per head* of the first layer.
    pub hidden: usize,
    /// Attention heads in the first layer.
    pub heads: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// LeakyReLU slope in the attention logits (0.2 in the original GAT).
    pub leaky_slope: f64,
}

impl Gat {
    /// Default configuration with the given output dimension: 4 heads of
    /// `dim/4` hidden units each (so the concatenated width stays `dim`).
    pub fn with_dim(dim: usize) -> Self {
        let heads = 4;
        Gat {
            dim,
            hidden: (dim / heads).max(4),
            heads,
            epochs: 120,
            lr: 0.005,
            leaky_slope: 0.2,
        }
    }
}

/// Attention mask: 1 where an edge exists, plus self-loops (standard GAT).
fn attention_mask(graph: &Graph) -> Matrix {
    let n = graph.num_nodes();
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        m.set(i, i, 1.0);
        for (j, _) in graph.neighbors(i) {
            m.set(i, j, 1.0);
        }
    }
    m
}

struct GatLayer {
    w: tg_autograd::ParamId,
    a_src: tg_autograd::ParamId,
    a_dst: tg_autograd::ParamId,
}

impl GatLayer {
    fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        fan_in: usize,
        fan_out: usize,
    ) -> Self {
        GatLayer {
            w: store.add(format!("{name}.w"), xavier_init(rng, fan_in, fan_out)),
            a_src: store.add(format!("{name}.a_src"), xavier_init(rng, fan_out, 1)),
            a_dst: store.add(format!("{name}.a_dst"), xavier_init(rng, fan_out, 1)),
        }
    }

    /// One masked self-attention layer (Eq. 5):
    /// `α_ij = softmax_j(LeakyReLU(aᵀ[Wh_i ‖ Wh_j]))`, out `= α (W H)`.
    /// The bilinear form `aᵀ[x‖y]` decomposes as `a_srcᵀx + a_dstᵀy`, which
    /// is the `add_outer` of two projected column vectors.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        mask: &Matrix,
        slope: f64,
    ) -> Var {
        let w = tape.param(store, self.w);
        let a1 = tape.param(store, self.a_src);
        let a2 = tape.param(store, self.a_dst);
        let hp = tape.matmul(h, w);
        let s = tape.matmul(hp, a1);
        let t = tape.matmul(hp, a2);
        let e = tape.add_outer(s, t);
        let e = tape.leaky_relu(e, slope);
        let e = tape.masked_fill(e, mask.clone(), -1e30);
        let alpha = tape.row_softmax(e);
        tape.matmul(alpha, hp)
    }
}

impl GraphLearner for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "Gat: feature rows != nodes");
        let mask = attention_mask(graph);
        let set = build_linkpred_set(graph, rng);
        if set.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let targets = Matrix::from_vec(set.len(), 1, set.labels.clone());

        let mut store = ParamStore::new();
        let heads: Vec<GatLayer> = (0..self.heads.max(1))
            .map(|h| {
                GatLayer::new(
                    &mut store,
                    rng,
                    &format!("gat.l1.h{h}"),
                    features.cols(),
                    self.hidden,
                )
            })
            .collect();
        let l2 = GatLayer::new(
            &mut store,
            rng,
            "gat.l2",
            self.hidden * heads.len(),
            self.dim,
        );
        let mut opt = Adam::new(self.lr);

        let mut final_emb = Matrix::zeros(n, self.dim);
        for epoch in 0..=self.epochs {
            let mut tape = Tape::new();
            let x = tape.constant(features.clone());
            // Multi-head layer 1: concatenate per-head outputs.
            let mut h1 = heads[0].forward(&mut tape, &store, x, &mask, self.leaky_slope);
            for head in &heads[1..] {
                let hh = head.forward(&mut tape, &store, x, &mask, self.leaky_slope);
                h1 = tape.concat_cols(h1, hh);
            }
            let h1 = tape.relu(h1);
            let h2 = l2.forward(&mut tape, &store, h1, &mask, self.leaky_slope);
            let emb = tape.row_l2_normalize(h2);

            if epoch == self.epochs {
                final_emb = tape.value(emb).clone();
                break;
            }

            let eu = tape.gather_rows(emb, set.us.clone());
            let ev = tape.gather_rows(emb, set.vs.clone());
            let prod = tape.mul_elem(eu, ev);
            let raw = tape.row_sum(prod);
            let logits = tape.scalar_mul(raw, 5.0);
            let loss = tape.bce_with_logits(logits, &targets);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_grads(&mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        final_emb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{EdgeKind, NodeKind};
    use tg_linalg::distance::cosine_similarity;
    use tg_zoo::ModelId;

    fn two_cliques() -> Graph {
        let mut g = Graph::new();
        for i in 0..8 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(a, b, 1.0, EdgeKind::DatasetDataset);
                g.add_edge(a + 4, b + 4, 1.0, EdgeKind::DatasetDataset);
            }
        }
        g
    }

    #[test]
    fn attention_mask_has_self_loops_and_edges() {
        let g = two_cliques();
        let m = attention_mask(&g);
        for i in 0..8 {
            assert_eq!(m.get(i, i), 1.0);
        }
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 5), 0.0);
    }

    #[test]
    fn multi_head_and_single_head_both_work() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r + c) as f64 * 0.61).sin());
        for heads in [1, 2, 4] {
            let gat = Gat {
                heads,
                hidden: 4,
                epochs: 20,
                ..Gat::with_dim(8)
            };
            let emb = gat.embed(&g, &features, &mut Rng::seed_from_u64(3));
            assert_eq!(emb.shape(), (8, 8), "heads={heads}");
            assert!(!emb.has_non_finite(), "heads={heads}");
        }
    }

    #[test]
    fn embedding_shape_and_finite() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r * 3 + c) as f64 * 0.41).cos());
        let gat = Gat {
            epochs: 30,
            ..Gat::with_dim(8)
        };
        let emb = gat.embed(&g, &features, &mut Rng::seed_from_u64(1));
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
    }

    #[test]
    fn clique_members_embed_together() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 1.3).sin() * 0.3
        });
        let gat = Gat {
            epochs: 80,
            ..Gat::with_dim(8)
        };
        let emb = gat.embed(&g, &features, &mut Rng::seed_from_u64(2));
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }
}
