//! Graph attention network (Veličković et al., ICLR 2018) — the paper's
//! Eq. 5 — with masked self-attention, trained full-batch for link
//! prediction, plus a neighbour-sampled minibatch driver and inductive
//! inference.
//!
//! As with GraphSAGE, the full-graph path is the bit-identical parity
//! reference; the minibatch path restricts each attention row to a
//! sampled block (destinations attend to their sampled neighbours and
//! themselves), bounding tape residency by the block size.

use crate::blocks::{
    block_attention_mask, gather_rows, relu_inplace, row_l2_normalize_inplace, MinibatchConfig,
};
use crate::learner::GraphLearner;
use crate::linkpred::build_linkpred_set;
use crate::sage::batch_pairs;
use tg_autograd::{xavier_init, Adam, Optimizer, ParamStore, Tape, Var};
use tg_graph::adjacency::attention_mask;
use tg_graph::{Block, Csr, Graph, NeighborSampler};
use tg_linalg::Matrix;
use tg_rng::Rng;

/// GAT configuration. The first layer uses `heads` attention heads with
/// concatenated outputs (as in the original GAT); the output layer uses a
/// single head.
#[derive(Clone, Debug)]
pub struct Gat {
    /// Output embedding dimension.
    pub dim: usize,
    /// Hidden width *per head* of the first layer.
    pub hidden: usize,
    /// Attention heads in the first layer.
    pub heads: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// LeakyReLU slope in the attention logits (0.2 in the original GAT).
    pub leaky_slope: f64,
}

impl Gat {
    /// Default configuration with the given output dimension: 4 heads of
    /// `dim/4` hidden units each (so the concatenated width stays `dim`).
    pub fn with_dim(dim: usize) -> Self {
        let heads = 4;
        Gat {
            dim,
            hidden: (dim / heads).max(4),
            heads,
            epochs: 120,
            lr: 0.005,
            leaky_slope: 0.2,
        }
    }
}

struct GatLayer {
    w: tg_autograd::ParamId,
    a_src: tg_autograd::ParamId,
    a_dst: tg_autograd::ParamId,
}

impl GatLayer {
    fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        fan_in: usize,
        fan_out: usize,
    ) -> Self {
        GatLayer {
            w: store.add(format!("{name}.w"), xavier_init(rng, fan_in, fan_out)),
            a_src: store.add(format!("{name}.a_src"), xavier_init(rng, fan_out, 1)),
            a_dst: store.add(format!("{name}.a_dst"), xavier_init(rng, fan_out, 1)),
        }
    }

    /// One masked self-attention layer (Eq. 5):
    /// `α_ij = softmax_j(LeakyReLU(aᵀ[Wh_i ‖ Wh_j]))`, out `= α (W H)`.
    /// The bilinear form `aᵀ[x‖y]` decomposes as `a_srcᵀx + a_dstᵀy`, which
    /// is the `add_outer` of two projected column vectors.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        mask: &Matrix,
        slope: f64,
    ) -> Var {
        let w = tape.param(store, self.w);
        let a1 = tape.param(store, self.a_src);
        let a2 = tape.param(store, self.a_dst);
        let hp = tape.matmul(h, w);
        let s = tape.matmul(hp, a1);
        let t = tape.matmul(hp, a2);
        let e = tape.add_outer(s, t);
        let e = tape.leaky_relu(e, slope);
        let e = tape.masked_fill(e, mask.clone(), -1e30);
        let alpha = tape.row_softmax(e);
        tape.matmul(alpha, hp)
    }

    /// The same attention layer restricted to a sampled block: each of
    /// the `num_dst` destinations attends over the block's `num_src`
    /// sources through the block mask. `h` holds the sources' states.
    fn forward_block(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        block: &Block,
        slope: f64,
    ) -> Var {
        let w = tape.param(store, self.w);
        let a1 = tape.param(store, self.a_src);
        let a2 = tape.param(store, self.a_dst);
        let hp = tape.matmul(h, w);
        let hp_dst = tape.gather_rows(hp, (0..block.num_dst()).collect());
        let s = tape.matmul(hp_dst, a1);
        let t = tape.matmul(hp, a2);
        let e = tape.add_outer(s, t);
        let e = tape.leaky_relu(e, slope);
        let e = tape.masked_fill(e, block_attention_mask(block), -1e30);
        let alpha = tape.row_softmax(e);
        tape.matmul(alpha, hp)
    }
}

/// Weights of one trained attention layer, detached from the tape.
#[derive(Clone, Debug)]
struct TrainedGatLayer {
    w: Matrix,
    a_src: Matrix,
    a_dst: Matrix,
}

impl TrainedGatLayer {
    fn detach(layer: &GatLayer, store: &ParamStore) -> Self {
        TrainedGatLayer {
            w: store.value(layer.w).clone(),
            a_src: store.value(layer.a_src).clone(),
            a_dst: store.value(layer.a_dst).clone(),
        }
    }

    /// Tape-free block attention: masked row softmax over the sampled
    /// sources (each row has at least its self entry unmasked).
    fn forward_block(&self, h: &Matrix, block: &Block, slope: f64) -> Matrix {
        let hp = h.matmul(&self.w);
        let s = hp.matmul(&self.a_src);
        let t = hp.matmul(&self.a_dst);
        let mask = block_attention_mask(block);
        let leaky = |x: f64| if x > 0.0 { x } else { slope * x };
        let mut out = Matrix::zeros(block.num_dst(), hp.cols());
        let mut allowed: Vec<usize> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for i in 0..block.num_dst() {
            allowed.clear();
            scores.clear();
            for j in 0..block.num_src() {
                if mask.get(i, j) != 0.0 {
                    allowed.push(j);
                    scores.push(leaky(s.get(i, 0) + t.get(j, 0)));
                }
            }
            let mx = scores.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            let mut denom = 0.0;
            for sc in scores.iter_mut() {
                *sc = (*sc - mx).exp();
                denom += *sc;
            }
            for (&j, &a) in allowed.iter().zip(scores.iter()) {
                let alpha = a / denom;
                for c in 0..hp.cols() {
                    out.set(i, c, out.get(i, c) + alpha * hp.get(j, c));
                }
            }
        }
        out
    }
}

/// Weights of a trained two-layer GAT, detached from any tape: embeds
/// any node inductively by attending over its sampled neighbourhood.
#[derive(Clone, Debug)]
pub struct TrainedGat {
    heads: Vec<TrainedGatLayer>,
    l2: TrainedGatLayer,
    slope: f64,
    fanouts: Vec<usize>,
    infer_seed: u64,
}

/// Fixed inference-sampling seed (see `TrainedSage`).
const INFER_SEED: u64 = 0x9a7_cafe;

impl TrainedGat {
    /// Output embedding dimension.
    pub fn dim(&self) -> usize {
        self.l2.w.cols()
    }

    /// Inductively embeds `nodes`: samples their layered neighbourhood
    /// deterministically and runs the trained attention layers tape-free.
    pub fn embed_nodes(&self, graph: &Graph, features: &Matrix, nodes: &[usize]) -> Matrix {
        assert_eq!(
            features.rows(),
            graph.num_nodes(),
            "TrainedGat: feature rows != nodes"
        );
        let csr = Csr::from_graph(graph);
        let sampler = NeighborSampler::new(self.fanouts.clone(), self.infer_seed);
        let blocks = sampler.sample_blocks(&csr, nodes);
        let x = gather_rows(features, blocks[0].src_nodes());
        let mut h1 = self.heads[0].forward_block(&x, &blocks[0], self.slope);
        for head in &self.heads[1..] {
            h1 = h1.hstack(&head.forward_block(&x, &blocks[0], self.slope));
        }
        relu_inplace(&mut h1);
        let mut h2 = self.l2.forward_block(&h1, &blocks[1], self.slope);
        row_l2_normalize_inplace(&mut h2);
        h2
    }

    /// Embeds every node (deterministic inductive inference).
    pub fn embed_all(&self, graph: &Graph, features: &Matrix) -> Matrix {
        let nodes: Vec<usize> = (0..graph.num_nodes()).collect();
        self.embed_nodes(graph, features, &nodes)
    }
}

impl Gat {
    /// Minibatch training on neighbour-sampled blocks and scoped tapes
    /// (see `GraphSage::train_minibatch` for the shared structure).
    pub fn train_minibatch(
        &self,
        graph: &Graph,
        features: &Matrix,
        rng: &mut Rng,
        cfg: &MinibatchConfig,
    ) -> TrainedGat {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "Gat: feature rows != nodes");
        let fanouts = cfg.fanouts_for(2);

        let mut store = ParamStore::new();
        let heads: Vec<GatLayer> = (0..self.heads.max(1))
            .map(|h| {
                GatLayer::new(
                    &mut store,
                    rng,
                    &format!("gat.l1.h{h}"),
                    features.cols(),
                    self.hidden,
                )
            })
            .collect();
        let l2 = GatLayer::new(
            &mut store,
            rng,
            "gat.l2",
            self.hidden * heads.len(),
            self.dim,
        );

        let set = build_linkpred_set(graph, rng);
        let trained = |store: &ParamStore| TrainedGat {
            heads: heads
                .iter()
                .map(|h| TrainedGatLayer::detach(h, store))
                .collect(),
            l2: TrainedGatLayer::detach(&l2, store),
            slope: self.leaky_slope,
            fanouts: fanouts.clone(),
            infer_seed: INFER_SEED,
        };
        if set.is_empty() {
            return trained(&store);
        }

        let csr = Csr::from_graph(graph);
        let sample_seed = rng.next_u64();
        let mut opt = Adam::new(self.lr);
        let mut tape = Tape::new();
        let epochs = cfg.epochs.unwrap_or(self.epochs);
        let mut order: Vec<usize> = (0..set.len()).collect();
        for epoch in 0..epochs {
            rng.shuffle(&mut order);
            for (batch_idx, chunk) in order.chunks(cfg.batch).enumerate() {
                let sampler = NeighborSampler::new(
                    fanouts.clone(),
                    sample_seed ^ ((epoch as u64) << 32) ^ batch_idx as u64,
                );
                let (seeds, u_loc, v_loc, labels) =
                    batch_pairs(&set.us, &set.vs, &set.labels, chunk);
                let blocks = sampler.sample_blocks(&csr, &seeds);
                tape.scope(|t| {
                    let x = t.constant(gather_rows(features, blocks[0].src_nodes()));
                    let mut h1 = heads[0].forward_block(t, &store, x, &blocks[0], self.leaky_slope);
                    for head in &heads[1..] {
                        let hh = head.forward_block(t, &store, x, &blocks[0], self.leaky_slope);
                        h1 = t.concat_cols(h1, hh);
                    }
                    let h1 = t.relu(h1);
                    let h2 = l2.forward_block(t, &store, h1, &blocks[1], self.leaky_slope);
                    let emb = t.row_l2_normalize(h2);
                    let targets = Matrix::from_vec(labels.len(), 1, labels.clone());
                    let eu = t.gather_rows(emb, u_loc.clone());
                    let ev = t.gather_rows(emb, v_loc.clone());
                    let prod = t.mul_elem(eu, ev);
                    let raw = t.row_sum(prod);
                    let logits = t.scalar_mul(raw, 5.0);
                    let loss = t.bce_with_logits(logits, &targets);
                    t.backward(loss);
                    store.zero_grads();
                    t.accumulate_grads(&mut store);
                    store.clip_grad_norm(5.0);
                    opt.step(&mut store);
                });
            }
        }
        trained(&store)
    }
}

impl GraphLearner for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "Gat: feature rows != nodes");
        let mask = attention_mask(graph);
        let set = build_linkpred_set(graph, rng);
        if set.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let targets = Matrix::from_vec(set.len(), 1, set.labels.clone());

        let mut store = ParamStore::new();
        let heads: Vec<GatLayer> = (0..self.heads.max(1))
            .map(|h| {
                GatLayer::new(
                    &mut store,
                    rng,
                    &format!("gat.l1.h{h}"),
                    features.cols(),
                    self.hidden,
                )
            })
            .collect();
        let l2 = GatLayer::new(
            &mut store,
            rng,
            "gat.l2",
            self.hidden * heads.len(),
            self.dim,
        );
        let mut opt = Adam::new(self.lr);

        let mut final_emb = Matrix::zeros(n, self.dim);
        for epoch in 0..=self.epochs {
            let mut tape = Tape::new();
            let x = tape.constant(features.clone());
            // Multi-head layer 1: concatenate per-head outputs.
            let mut h1 = heads[0].forward(&mut tape, &store, x, &mask, self.leaky_slope);
            for head in &heads[1..] {
                let hh = head.forward(&mut tape, &store, x, &mask, self.leaky_slope);
                h1 = tape.concat_cols(h1, hh);
            }
            let h1 = tape.relu(h1);
            let h2 = l2.forward(&mut tape, &store, h1, &mask, self.leaky_slope);
            let emb = tape.row_l2_normalize(h2);

            if epoch == self.epochs {
                final_emb = tape.value(emb).clone();
                break;
            }

            let eu = tape.gather_rows(emb, set.us.clone());
            let ev = tape.gather_rows(emb, set.vs.clone());
            let prod = tape.mul_elem(eu, ev);
            let raw = tape.row_sum(prod);
            let logits = tape.scalar_mul(raw, 5.0);
            let loss = tape.bce_with_logits(logits, &targets);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_grads(&mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        final_emb
    }
}

/// [`GraphLearner`] adapter for the minibatch GAT driver (see
/// `MiniGraphSage`).
#[derive(Clone, Debug)]
pub struct MiniGat {
    /// The underlying architecture/hyperparameters.
    pub inner: Gat,
    /// Sampling and batching configuration.
    pub cfg: MinibatchConfig,
}

impl MiniGat {
    /// Minibatch GAT with the given output dimension, sampling config
    /// from the environment.
    pub fn with_dim(dim: usize) -> Self {
        MiniGat {
            inner: Gat::with_dim(dim),
            cfg: MinibatchConfig::from_env(),
        }
    }
}

impl GraphLearner for MiniGat {
    fn name(&self) -> &'static str {
        "GAT-mb"
    }

    fn dim(&self) -> usize {
        self.inner.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        if graph.edges().is_empty() {
            return Matrix::zeros(graph.num_nodes(), self.inner.dim);
        }
        let trained = self.inner.train_minibatch(graph, features, rng, &self.cfg);
        trained.embed_all(graph, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::fixtures::two_cliques;
    use tg_linalg::distance::cosine_similarity;

    #[test]
    fn multi_head_and_single_head_both_work() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r + c) as f64 * 0.61).sin());
        for heads in [1, 2, 4] {
            let gat = Gat {
                heads,
                hidden: 4,
                epochs: 20,
                ..Gat::with_dim(8)
            };
            let emb = gat.embed(&g, &features, &mut Rng::seed_from_u64(3));
            assert_eq!(emb.shape(), (8, 8), "heads={heads}");
            assert!(!emb.has_non_finite(), "heads={heads}");
        }
    }

    #[test]
    fn embedding_shape_and_finite() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r * 3 + c) as f64 * 0.41).cos());
        let gat = Gat {
            epochs: 30,
            ..Gat::with_dim(8)
        };
        let emb = gat.embed(&g, &features, &mut Rng::seed_from_u64(1));
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
    }

    #[test]
    fn clique_members_embed_together() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 1.3).sin() * 0.3
        });
        let gat = Gat {
            epochs: 80,
            ..Gat::with_dim(8)
        };
        let emb = gat.embed(&g, &features, &mut Rng::seed_from_u64(2));
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }

    #[test]
    fn minibatch_gat_trains_and_embeds_inductively() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 1.3).sin() * 0.3
        });
        let gat = Gat {
            epochs: 40,
            ..Gat::with_dim(8)
        };
        let cfg = MinibatchConfig {
            fanouts: vec![3, 3],
            batch: 8,
            epochs: None,
        };
        let trained = gat.train_minibatch(&g, &features, &mut Rng::seed_from_u64(2), &cfg);
        let emb = trained.embed_all(&g, &features);
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
        // Inductive per-node rows match the all-nodes pass up to
        // summation-order rounding (frontier ordering depends on the seed
        // set); identical calls are bit-identical.
        let some = trained.embed_nodes(&g, &features, &[1, 7]);
        for c in 0..8 {
            assert!((some.get(0, c) - emb.get(1, c)).abs() < 1e-12);
            assert!((some.get(1, c) - emb.get(7, c)).abs() < 1e-12);
        }
        let again = trained.embed_nodes(&g, &features, &[1, 7]);
        assert_eq!(some.as_slice(), again.as_slice());
    }
}
