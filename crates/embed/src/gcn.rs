//! GCN (Kipf & Welling, ICLR 2017) — the representative convolutional
//! graph learner the paper's related work (§VIII-B2) cites alongside
//! GraphSAGE. Included so the learner comparison covers the full family.
//!
//! Layer rule: `H' = σ(D̂^{-1/2} Â D̂^{-1/2} H W)` with `Â = A + I`
//! (self-loops) and `D̂` its degree matrix. Trained with the same
//! link-prediction head as the other GNNs.

use crate::learner::GraphLearner;
use crate::linkpred::build_linkpred_set;
use tg_autograd::{xavier_init, Adam, Optimizer, ParamStore, Tape};
use tg_graph::adjacency::normalized_adjacency;
use tg_graph::Graph;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// GCN configuration.
#[derive(Clone, Debug)]
pub struct Gcn {
    /// Output embedding dimension.
    pub dim: usize,
    /// Hidden width of the first layer.
    pub hidden: usize,
    /// Training epochs (full-batch Adam).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Gcn {
    /// Default configuration with the given output dimension.
    pub fn with_dim(dim: usize) -> Self {
        Gcn {
            dim,
            hidden: dim,
            epochs: 120,
            lr: 0.01,
        }
    }
}

impl GraphLearner for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "Gcn: feature rows != nodes");
        let a_norm = normalized_adjacency(graph);
        let set = build_linkpred_set(graph, rng);
        if set.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let targets = Matrix::from_vec(set.len(), 1, set.labels.clone());

        let mut store = ParamStore::new();
        let w1 = store.add("gcn.w1", xavier_init(rng, features.cols(), self.hidden));
        let w2 = store.add("gcn.w2", xavier_init(rng, self.hidden, self.dim));
        let mut opt = Adam::new(self.lr);

        let mut final_emb = Matrix::zeros(n, self.dim);
        for epoch in 0..=self.epochs {
            let mut tape = Tape::new();
            let x = tape.constant(features.clone());
            let adj = tape.constant(a_norm.clone());
            let w1v = tape.param(&store, w1);
            let w2v = tape.param(&store, w2);
            // Layer 1: ReLU(Â X W1).
            let ax = tape.matmul(adj, x);
            let h1 = tape.matmul(ax, w1v);
            let h1 = tape.relu(h1);
            // Layer 2: Â H W2, row-normalised for the dot-product head.
            let ah = tape.matmul(adj, h1);
            let h2 = tape.matmul(ah, w2v);
            let emb = tape.row_l2_normalize(h2);

            if epoch == self.epochs {
                final_emb = tape.value(emb).clone();
                break;
            }
            let eu = tape.gather_rows(emb, set.us.clone());
            let ev = tape.gather_rows(emb, set.vs.clone());
            let prod = tape.mul_elem(eu, ev);
            let raw = tape.row_sum(prod);
            let logits = tape.scalar_mul(raw, 5.0);
            let loss = tape.bce_with_logits(logits, &targets);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_grads(&mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        final_emb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::fixtures::two_cliques;
    use tg_linalg::distance::cosine_similarity;

    #[test]
    fn embedding_shape_and_finite() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r * 2 + c) as f64 * 0.53).sin());
        let gcn = Gcn {
            epochs: 30,
            ..Gcn::with_dim(8)
        };
        let emb = gcn.embed(&g, &features, &mut Rng::seed_from_u64(1));
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
    }

    #[test]
    fn clique_members_embed_together() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 0.7).sin() * 0.3
        });
        let gcn = Gcn {
            epochs: 80,
            ..Gcn::with_dim(8)
        };
        let emb = gcn.embed(&g, &features, &mut Rng::seed_from_u64(2));
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }
}
