//! Link-prediction training data for the GNN learners (§V-B): positive
//! edges from the graph, negatives from below-threshold pairs plus random
//! non-edges.

use tg_graph::Graph;
use tg_rng::Rng;

/// A labelled training set of node pairs for link prediction.
#[derive(Clone, Debug)]
pub struct LinkPredSet {
    /// First endpoints.
    pub us: Vec<usize>,
    /// Second endpoints.
    pub vs: Vec<usize>,
    /// Labels: 1.0 for positive edges, 0.0 for negatives.
    pub labels: Vec<f64>,
}

impl LinkPredSet {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.us.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.us.is_empty()
    }
}

/// Builds the training set: every positive edge of the graph, plus the
/// graph's below-threshold negative pairs, topped up with uniformly sampled
/// non-edges so positives and negatives are balanced.
pub fn build_linkpred_set(graph: &Graph, rng: &mut Rng) -> LinkPredSet {
    let mut us = Vec::new();
    let mut vs = Vec::new();
    let mut labels = Vec::new();
    for e in graph.edges() {
        us.push(e.a);
        vs.push(e.b);
        labels.push(1.0);
    }
    let n_pos = labels.len();
    for e in graph.negatives() {
        us.push(e.a);
        vs.push(e.b);
        labels.push(0.0);
    }
    let mut n_neg = graph.negatives().len();
    // Top up with random non-edges (rejection sampling, bounded tries).
    let n = graph.num_nodes();
    if n >= 2 {
        let mut tries = 0;
        while n_neg < n_pos && tries < 20 * n_pos {
            tries += 1;
            let a = rng.index(n);
            let b = rng.index(n);
            if a == b || graph.has_edge(a, b) {
                continue;
            }
            us.push(a);
            vs.push(b);
            labels.push(0.0);
            n_neg += 1;
        }
    }
    LinkPredSet { us, vs, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{EdgeKind, NodeKind};
    use tg_zoo::ModelId;

    fn graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..8 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        for i in 0..4 {
            g.add_edge(i, i + 1, 0.8, EdgeKind::ModelDatasetAccuracy);
        }
        g.add_negative(6, 7, 0.1, EdgeKind::ModelDatasetAccuracy);
        g
    }

    #[test]
    fn balanced_labels() {
        let g = graph();
        let set = build_linkpred_set(&g, &mut Rng::seed_from_u64(1));
        let pos = set.labels.iter().filter(|&&l| l == 1.0).count();
        let neg = set.labels.iter().filter(|&&l| l == 0.0).count();
        assert_eq!(pos, 4);
        assert!(neg >= 4, "negatives should be topped up: {neg}");
    }

    #[test]
    fn negatives_are_not_positive_edges() {
        let g = graph();
        let set = build_linkpred_set(&g, &mut Rng::seed_from_u64(2));
        for i in 0..set.len() {
            if set.labels[i] == 0.0 {
                assert!(!g.has_edge(set.us[i], set.vs[i]));
            }
        }
    }

    #[test]
    fn includes_threshold_negatives() {
        let g = graph();
        let set = build_linkpred_set(&g, &mut Rng::seed_from_u64(3));
        let found =
            (0..set.len()).any(|i| set.us[i] == 6 && set.vs[i] == 7 && set.labels[i] == 0.0);
        assert!(found);
    }
}
