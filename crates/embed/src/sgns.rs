//! Skip-gram with negative sampling (word2vec, Mikolov et al. 2013) over
//! random-walk corpora — the representation learner under Node2Vec.
//!
//! Implemented directly with hand-rolled SGD (the closed-form gradients of
//! the SGNS objective) rather than the autograd tape: SGNS updates touch
//! only two embedding rows per sample, which the tape cannot exploit.

use tg_linalg::Matrix;
use tg_rng::{AliasTable, Rng};

/// SGNS hyperparameters.
#[derive(Clone, Debug)]
pub struct SgnsConfig {
    /// Embedding dimension (the paper extracts 128-d node representations).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to 10%.
    pub lr: f64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 128,
            window: 5,
            negatives: 5,
            epochs: 3,
            lr: 0.025,
        }
    }
}

/// A trainable SGNS model whose embeddings can be refined incrementally —
/// the warm-start entry point used by the dynamic-graph extension.
pub struct SgnsModel {
    cfg: SgnsConfig,
    w_in: Matrix,
    w_out: Matrix,
}

impl SgnsModel {
    /// Fresh model: input ~ U(-0.5/dim, 0.5/dim), output zeros (word2vec
    /// defaults).
    pub fn new(num_nodes: usize, cfg: SgnsConfig, rng: &mut Rng) -> Self {
        assert!(num_nodes > 0, "SgnsModel: empty graph");
        let w_in = Matrix::from_fn(num_nodes, cfg.dim, |_, _| {
            rng.uniform_range(-0.5, 0.5) / cfg.dim as f64
        });
        let w_out = Matrix::zeros(num_nodes, cfg.dim);
        SgnsModel { cfg, w_in, w_out }
    }

    /// Current input embeddings (one row per node).
    pub fn embeddings(&self) -> &Matrix {
        &self.w_in
    }

    /// Consumes the model, returning the input embeddings.
    pub fn into_embeddings(self) -> Matrix {
        self.w_in
    }

    /// Grows the model to hold `num_nodes` rows (new nodes get fresh
    /// word2vec init). No-op if already large enough.
    pub fn grow_to(&mut self, num_nodes: usize, rng: &mut Rng) {
        let old = self.w_in.rows();
        if num_nodes <= old {
            return;
        }
        let dim = self.cfg.dim;
        let mut w_in = Matrix::zeros(num_nodes, dim);
        let mut w_out = Matrix::zeros(num_nodes, dim);
        for r in 0..old {
            w_in.row_mut(r).copy_from_slice(self.w_in.row(r));
            w_out.row_mut(r).copy_from_slice(self.w_out.row(r));
        }
        for r in old..num_nodes {
            for c in 0..dim {
                w_in.set(r, c, rng.uniform_range(-0.5, 0.5) / dim as f64);
            }
        }
        self.w_in = w_in;
        self.w_out = w_out;
    }

    /// Runs `cfg.epochs` passes of skip-gram with negative sampling over the
    /// walks, updating the embeddings in place. `lr_scale` rescales the
    /// configured learning rate (incremental refreshes use a smaller rate).
    ///
    /// The negative-sampling distribution is the unigram count of nodes in
    /// the corpus raised to 3/4, as in word2vec.
    pub fn train(&mut self, walks: &[Vec<usize>], rng: &mut Rng, lr_scale: f64) {
        self.train_with_epochs(walks, rng, lr_scale, self.cfg.epochs)
    }

    /// Like [`SgnsModel::train`] with an explicit epoch count (incremental
    /// refreshes run a single cheap pass).
    pub fn train_with_epochs(
        &mut self,
        walks: &[Vec<usize>],
        rng: &mut Rng,
        lr_scale: f64,
        epochs: usize,
    ) {
        let num_nodes = self.w_in.rows();
        let cfg = &self.cfg;
        // Unigram^0.75 negative table. Nodes never visited still need a
        // sampling weight floor so the table is well-formed.
        let mut counts = vec![0.0f64; num_nodes];
        for walk in walks {
            for &n in walk {
                counts[n] += 1.0;
            }
        }
        let weights: Vec<f64> = counts.iter().map(|&c| (c + 0.1).powf(0.75)).collect();
        let neg_table = AliasTable::new(&weights);

        let total_steps = (epochs * walks.len()).max(1);
        let mut step = 0usize;
        let mut grad_in = vec![0.0f64; cfg.dim];
        for _epoch in 0..epochs {
            for walk in walks {
                let progress = step as f64 / total_steps as f64;
                let lr = cfg.lr * lr_scale * (1.0 - 0.9 * progress);
                step += 1;
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(walk.len());
                    for j in lo..hi {
                        if j == i {
                            continue;
                        }
                        let context = walk[j];
                        grad_in.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair + negatives.
                        for k in 0..=cfg.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0)
                            } else {
                                (neg_table.sample(rng), 0.0)
                            };
                            if k > 0 && target == context {
                                continue; // skip accidental positives
                            }
                            let vi = self.w_in.row(center);
                            let vo = self.w_out.row(target);
                            let dot: f64 = vi.iter().zip(vo).map(|(a, b)| a * b).sum();
                            let pred = sigmoid(dot);
                            let g = (pred - label) * lr;
                            // Accumulate input grad; update output row in
                            // place.
                            for d in 0..cfg.dim {
                                grad_in[d] += g * vo[d];
                            }
                            let vi_copy: Vec<f64> = vi.to_vec();
                            let vo_mut = self.w_out.row_mut(target);
                            for d in 0..cfg.dim {
                                vo_mut[d] -= g * vi_copy[d];
                            }
                        }
                        let vi_mut = self.w_in.row_mut(center);
                        for d in 0..cfg.dim {
                            vi_mut[d] -= grad_in[d];
                        }
                    }
                }
            }
        }
    }
}

/// Trains SGNS over the walks and returns the input-embedding matrix
/// (`num_nodes × dim`).
pub fn train_sgns(
    walks: &[Vec<usize>],
    num_nodes: usize,
    cfg: &SgnsConfig,
    rng: &mut Rng,
) -> Matrix {
    let mut model = SgnsModel::new(num_nodes, cfg.clone(), rng);
    model.train(walks, rng, 1.0);
    model.into_embeddings()
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_linalg::distance::cosine_similarity;

    /// Corpus from two disjoint "communities": {0,1,2} and {3,4,5}.
    fn community_walks(rng: &mut Rng, n_walks: usize, len: usize) -> Vec<Vec<usize>> {
        let mut walks = Vec::new();
        for w in 0..n_walks {
            let base = if w % 2 == 0 { 0 } else { 3 };
            let mut walk = Vec::with_capacity(len);
            for _ in 0..len {
                walk.push(base + rng.index(3));
            }
            walks.push(walk);
        }
        walks
    }

    #[test]
    fn output_shape() {
        let mut rng = Rng::seed_from_u64(1);
        let walks = community_walks(&mut rng, 10, 10);
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 1,
            ..Default::default()
        };
        let emb = train_sgns(&walks, 6, &cfg, &mut rng);
        assert_eq!(emb.shape(), (6, 16));
        assert!(!emb.has_non_finite());
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let mut rng = Rng::seed_from_u64(2);
        let walks = community_walks(&mut rng, 200, 20);
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 3,
            window: 3,
            negatives: 4,
            lr: 0.05,
        };
        let emb = train_sgns(&walks, 6, &cfg, &mut rng);
        // Within-community cosine must exceed cross-community cosine.
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(4));
        assert!(
            within > cross + 0.2,
            "within {within} should beat cross {cross}"
        );
    }

    #[test]
    fn unvisited_nodes_keep_init_scale() {
        // Node 9 never appears: its embedding stays near init.
        let mut rng = Rng::seed_from_u64(3);
        let walks = community_walks(&mut rng, 20, 10);
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        };
        let emb = train_sgns(&walks, 10, &cfg, &mut rng);
        let norm9 = tg_linalg::matrix::norm(emb.row(9));
        assert!(norm9 < 0.5 / 8.0 * (8.0f64).sqrt() + 1e-9);
    }

    #[test]
    fn deterministic_given_rng() {
        let walks = vec![vec![0, 1, 2, 1, 0], vec![2, 1, 0, 1, 2]];
        let cfg = SgnsConfig {
            dim: 4,
            epochs: 2,
            ..Default::default()
        };
        let e1 = train_sgns(&walks, 3, &cfg, &mut Rng::seed_from_u64(7));
        let e2 = train_sgns(&walks, 3, &cfg, &mut Rng::seed_from_u64(7));
        assert_eq!(e1.as_slice(), e2.as_slice());
    }
}
