//! Graph learners for TransferGraph (§V-B): Node2Vec, Node2Vec+, GraphSAGE
//! and GAT, all trained for link prediction and all emitting 128-dimensional
//! node embeddings (§VI-B).
//!
//! * [`Node2Vec`] / [`Node2VecPlus`] — random-walk learners: biased walks
//!   (from `tg-graph`) fed into a from-scratch skip-gram with negative
//!   sampling ([`sgns`]). Node2Vec sees only the link structure; Node2Vec+
//!   additionally consumes edge weights.
//! * [`GraphSage`] — mean-aggregator GNN (Hamilton et al. 2017, Eq. 4 of
//!   the paper) on the `tg-autograd` substrate, trained with a dot-product
//!   link-prediction head.
//! * [`Gat`] — graph attention network (Veličković et al. 2018, Eq. 5 of
//!   the paper) with masked self-attention, same head.
//!
//! All learners implement [`GraphLearner`], the interface the TransferGraph
//! pipeline consumes.
//!
//! # Example
//!
//! ```
//! use tg_embed::{GraphLearner, Node2Vec};
//! use tg_graph::{Graph, NodeKind, EdgeKind};
//! use tg_zoo::ModelId;
//! use tg_rng::Rng;
//!
//! let mut g = Graph::new();
//! for i in 0..6 {
//!     g.add_node(NodeKind::Model(ModelId(i)));
//! }
//! for i in 0..5 {
//!     g.add_edge(i, i + 1, 1.0, EdgeKind::DatasetDataset);
//! }
//! let learner = Node2Vec::with_dim(16);
//! let features = tg_linalg::Matrix::zeros(6, 1); // ignored by Node2Vec
//! let emb = learner.embed(&g, &features, &mut Rng::seed_from_u64(1));
//! assert_eq!(emb.shape(), (6, 16));
//! ```

pub mod blocks;
pub mod dynamic;
pub mod gat;
pub mod gcn;
pub mod learner;
pub mod linkpred;
pub mod node2vec;
pub mod sage;
pub mod sgns;

pub use blocks::MinibatchConfig;
pub use dynamic::DynamicEmbedder;
pub use gat::{Gat, MiniGat, TrainedGat};
pub use gcn::Gcn;
pub use learner::{GraphLearner, LearnerKind};
pub use node2vec::{Node2Vec, Node2VecPlus};
pub use sage::{GraphSage, MiniGraphSage, TrainedSage};
pub use sgns::{train_sgns, SgnsConfig, SgnsModel};
