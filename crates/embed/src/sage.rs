//! GraphSAGE (Hamilton et al., NeurIPS 2017) with a mean aggregator — the
//! paper's Eq. 4 — trained full-batch for link prediction.

use crate::learner::GraphLearner;
use crate::linkpred::build_linkpred_set;
use tg_autograd::{xavier_init, Adam, Optimizer, ParamStore, Tape};
use tg_graph::Graph;
use tg_linalg::Matrix;
use tg_rng::Rng;

/// GraphSAGE configuration.
#[derive(Clone, Debug)]
pub struct GraphSage {
    /// Output embedding dimension.
    pub dim: usize,
    /// Hidden width of the first layer.
    pub hidden: usize,
    /// Training epochs (full-batch Adam).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl GraphSage {
    /// Default configuration with the given output dimension.
    pub fn with_dim(dim: usize) -> Self {
        GraphSage {
            dim,
            hidden: dim,
            epochs: 120,
            lr: 0.01,
        }
    }
}

/// Row-normalised weighted adjacency (mean aggregator): `Â[i][j] =
/// w(i,j) / Σ_k w(i,k)`. Rows of isolated nodes stay zero, so their
/// aggregation contributes nothing.
pub(crate) fn mean_adjacency(graph: &Graph) -> Matrix {
    let n = graph.num_nodes();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for (j, w) in graph.neighbors(i) {
            a.set(i, j, a.get(i, j) + w.max(1e-9));
        }
    }
    for i in 0..n {
        let s: f64 = a.row(i).iter().sum();
        if s > 0.0 {
            for j in 0..n {
                a.set(i, j, a.get(i, j) / s);
            }
        }
    }
    a
}

impl GraphLearner for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSAGE"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "GraphSage: feature rows != nodes");
        let f = features.cols();
        let a_hat = mean_adjacency(graph);
        let set = build_linkpred_set(graph, rng);
        if set.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let targets = Matrix::from_vec(set.len(), 1, set.labels.clone());

        let mut store = ParamStore::new();
        let w_self1 = store.add("sage.w_self1", xavier_init(rng, f, self.hidden));
        let w_neigh1 = store.add("sage.w_neigh1", xavier_init(rng, f, self.hidden));
        let w_self2 = store.add("sage.w_self2", xavier_init(rng, self.hidden, self.dim));
        let w_neigh2 = store.add("sage.w_neigh2", xavier_init(rng, self.hidden, self.dim));
        let mut opt = Adam::new(self.lr);

        let mut final_emb = Matrix::zeros(n, self.dim);
        for epoch in 0..=self.epochs {
            let mut tape = Tape::new();
            let x = tape.constant(features.clone());
            let adj = tape.constant(a_hat.clone());
            // Layer 1: h = ReLU(X W_s + Â X W_n)  (Eq. 4, sum combine).
            let ws1 = tape.param(&store, w_self1);
            let wn1 = tape.param(&store, w_neigh1);
            let self1 = tape.matmul(x, ws1);
            let agg_in = tape.matmul(adj, x);
            let neigh1 = tape.matmul(agg_in, wn1);
            let h1 = tape.add(self1, neigh1);
            let h1 = tape.relu(h1);
            // Layer 2, then row-L2 normalisation (standard GraphSAGE).
            let ws2 = tape.param(&store, w_self2);
            let wn2 = tape.param(&store, w_neigh2);
            let self2 = tape.matmul(h1, ws2);
            let agg_h1 = tape.matmul(adj, h1);
            let neigh2 = tape.matmul(agg_h1, wn2);
            let h2 = tape.add(self2, neigh2);
            let emb = tape.row_l2_normalize(h2);

            if epoch == self.epochs {
                final_emb = tape.value(emb).clone();
                break;
            }

            // Dot-product link prediction head.
            let eu = tape.gather_rows(emb, set.us.clone());
            let ev = tape.gather_rows(emb, set.vs.clone());
            let prod = tape.mul_elem(eu, ev);
            let raw = tape.row_sum(prod);
            // Temperature: unit-norm dots live in [-1,1]; scale so the
            // sigmoid can saturate.
            let logits = tape.scalar_mul(raw, 5.0);
            let loss = tape.bce_with_logits(logits, &targets);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_grads(&mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        final_emb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{EdgeKind, NodeKind};
    use tg_linalg::distance::cosine_similarity;
    use tg_zoo::ModelId;

    fn two_cliques() -> Graph {
        let mut g = Graph::new();
        for i in 0..8 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(a, b, 1.0, EdgeKind::DatasetDataset);
                g.add_edge(a + 4, b + 4, 1.0, EdgeKind::DatasetDataset);
            }
        }
        g
    }

    #[test]
    fn mean_adjacency_rows_normalised() {
        let g = two_cliques();
        let a = mean_adjacency(&g);
        for i in 0..8 {
            let s: f64 = a.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums {s}");
        }
    }

    #[test]
    fn embedding_shape_and_finite() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r + c) as f64 * 0.37).sin());
        let sage = GraphSage {
            epochs: 30,
            ..GraphSage::with_dim(8)
        };
        let emb = sage.embed(&g, &features, &mut Rng::seed_from_u64(1));
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
    }

    #[test]
    fn clique_members_embed_together() {
        let g = two_cliques();
        // Features weakly indicate the clique.
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 0.9).sin() * 0.3
        });
        let sage = GraphSage {
            epochs: 80,
            ..GraphSage::with_dim(8)
        };
        let emb = sage.embed(&g, &features, &mut Rng::seed_from_u64(2));
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }

    #[test]
    fn empty_linkpred_yields_zeros() {
        // Graph with nodes but no edges at all.
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        let features = Matrix::zeros(3, 2);
        let sage = GraphSage::with_dim(4);
        let emb = sage.embed(&g, &features, &mut Rng::seed_from_u64(3));
        assert_eq!(emb.shape(), (3, 4));
    }
}
