//! GraphSAGE (Hamilton et al., NeurIPS 2017) with a mean aggregator — the
//! paper's Eq. 4 — trained full-batch for link prediction, plus a
//! neighbour-sampled minibatch driver and inductive inference.
//!
//! The full-graph [`GraphLearner::embed`] path is the bit-identical
//! parity reference (locked by `tests/full_graph_bits.rs`); the
//! minibatch path trades exactness of the aggregation neighbourhood for
//! bounded peak memory: each minibatch builds its layered [`Block`]s and
//! its own scoped tape, so tape residency scales with the block size,
//! not with n².

use crate::blocks::{
    block_mean_matrix, gather_rows, relu_inplace, row_l2_normalize_inplace, MinibatchConfig,
};
use crate::learner::GraphLearner;
use crate::linkpred::build_linkpred_set;
use std::collections::HashMap;
use tg_autograd::{xavier_init, Adam, Optimizer, ParamStore, Tape};
use tg_graph::adjacency::mean_adjacency;
use tg_graph::{Block, Csr, Graph, NeighborSampler};
use tg_linalg::Matrix;
use tg_rng::Rng;

/// GraphSAGE configuration.
#[derive(Clone, Debug)]
pub struct GraphSage {
    /// Output embedding dimension.
    pub dim: usize,
    /// Hidden width of the first layer.
    pub hidden: usize,
    /// Training epochs (full-batch Adam).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl GraphSage {
    /// Default configuration with the given output dimension.
    pub fn with_dim(dim: usize) -> Self {
        GraphSage {
            dim,
            hidden: dim,
            epochs: 120,
            lr: 0.01,
        }
    }
}

/// Weights of a trained two-layer GraphSAGE, detached from any tape:
/// enough to embed any node of any graph inductively by sampling its
/// neighbourhood — the serving-side "embed a new node without retraining"
/// path.
#[derive(Clone, Debug)]
pub struct TrainedSage {
    w_self1: Matrix,
    w_neigh1: Matrix,
    w_self2: Matrix,
    w_neigh2: Matrix,
    fanouts: Vec<usize>,
    /// Seed of the deterministic inference-time neighbour sampler.
    infer_seed: u64,
}

/// The fixed inference-sampling seed: inference must be a pure function
/// of (weights, graph, nodes), so it cannot consume a caller RNG.
const INFER_SEED: u64 = 0x5a9e_cafe;

impl TrainedSage {
    /// Output embedding dimension.
    pub fn dim(&self) -> usize {
        self.w_self2.cols()
    }

    /// Inductively embeds `nodes` of `graph` (any graph with the same
    /// feature width as training): samples their layered neighbourhood
    /// with the deterministic inference sampler and runs the trained
    /// layers tape-free. Rows are returned in `nodes` order.
    pub fn embed_nodes(&self, graph: &Graph, features: &Matrix, nodes: &[usize]) -> Matrix {
        assert_eq!(
            features.rows(),
            graph.num_nodes(),
            "TrainedSage: feature rows != nodes"
        );
        assert_eq!(
            features.cols(),
            self.w_self1.rows(),
            "TrainedSage: feature width != trained width"
        );
        let csr = Csr::from_graph(graph);
        let sampler = NeighborSampler::new(self.fanouts.clone(), self.infer_seed);
        let blocks = sampler.sample_blocks(&csr, nodes);
        self.forward_blocks(&blocks, features)
    }

    /// Embeds every node of `graph` (inductive inference over the full
    /// node set; deterministic).
    pub fn embed_all(&self, graph: &Graph, features: &Matrix) -> Matrix {
        let nodes: Vec<usize> = (0..graph.num_nodes()).collect();
        self.embed_nodes(graph, features, &nodes)
    }

    /// Tape-free forward over sampled blocks (input-first order).
    fn forward_blocks(&self, blocks: &[Block], features: &Matrix) -> Matrix {
        let x = gather_rows(features, blocks[0].src_nodes());
        let a0 = block_mean_matrix(&blocks[0]);
        let x_dst = gather_rows(&x, &(0..blocks[0].num_dst()).collect::<Vec<_>>());
        let mut h1 = x_dst.matmul(&self.w_self1);
        let agg = a0.matmul(&x).matmul(&self.w_neigh1);
        add_assign(&mut h1, &agg);
        relu_inplace(&mut h1);

        let a1 = block_mean_matrix(&blocks[1]);
        let h1_dst = gather_rows(&h1, &(0..blocks[1].num_dst()).collect::<Vec<_>>());
        let mut h2 = h1_dst.matmul(&self.w_self2);
        let agg2 = a1.matmul(&h1).matmul(&self.w_neigh2);
        add_assign(&mut h2, &agg2);
        row_l2_normalize_inplace(&mut h2);
        h2
    }
}

fn add_assign(dst: &mut Matrix, src: &Matrix) {
    debug_assert_eq!(dst.shape(), src.shape());
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += s;
    }
}

impl GraphSage {
    /// Minibatch training: neighbour-sampled blocks on one scoped tape
    /// per batch, Adam step per batch, against a shared `ParamStore`.
    /// Returns the trained weights for inductive inference.
    ///
    /// Peak tape residency is bounded by the largest sampled block (see
    /// `Tape::peak_bytes`), not by n² as in the full-graph driver.
    pub fn train_minibatch(
        &self,
        graph: &Graph,
        features: &Matrix,
        rng: &mut Rng,
        cfg: &MinibatchConfig,
    ) -> TrainedSage {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "GraphSage: feature rows != nodes");
        let f = features.cols();
        let fanouts = cfg.fanouts_for(2);

        let mut store = ParamStore::new();
        let w_self1 = store.add("sage.w_self1", xavier_init(rng, f, self.hidden));
        let w_neigh1 = store.add("sage.w_neigh1", xavier_init(rng, f, self.hidden));
        let w_self2 = store.add("sage.w_self2", xavier_init(rng, self.hidden, self.dim));
        let w_neigh2 = store.add("sage.w_neigh2", xavier_init(rng, self.hidden, self.dim));

        let set = build_linkpred_set(graph, rng);
        let trained = |store: &ParamStore| TrainedSage {
            w_self1: store.value(w_self1).clone(),
            w_neigh1: store.value(w_neigh1).clone(),
            w_self2: store.value(w_self2).clone(),
            w_neigh2: store.value(w_neigh2).clone(),
            fanouts: fanouts.clone(),
            infer_seed: INFER_SEED,
        };
        if set.is_empty() {
            return trained(&store);
        }

        let csr = Csr::from_graph(graph);
        let sample_seed = rng.next_u64();
        let mut opt = Adam::new(self.lr);
        let mut tape = Tape::new();
        let epochs = cfg.epochs.unwrap_or(self.epochs);
        let mut order: Vec<usize> = (0..set.len()).collect();
        for epoch in 0..epochs {
            rng.shuffle(&mut order);
            for (batch_idx, chunk) in order.chunks(cfg.batch).enumerate() {
                // One deterministic sampler stream per (epoch, batch).
                let sampler = NeighborSampler::new(
                    fanouts.clone(),
                    sample_seed ^ ((epoch as u64) << 32) ^ batch_idx as u64,
                );
                let (seeds, u_loc, v_loc, labels) =
                    batch_pairs(&set.us, &set.vs, &set.labels, chunk);
                let blocks = sampler.sample_blocks(&csr, &seeds);
                tape.scope(|t| {
                    let emb = sage_forward_tape(
                        t, &store, &blocks, features, w_self1, w_neigh1, w_self2, w_neigh2,
                    );
                    let targets = Matrix::from_vec(labels.len(), 1, labels.clone());
                    let eu = t.gather_rows(emb, u_loc.clone());
                    let ev = t.gather_rows(emb, v_loc.clone());
                    let prod = t.mul_elem(eu, ev);
                    let raw = t.row_sum(prod);
                    let logits = t.scalar_mul(raw, 5.0);
                    let loss = t.bce_with_logits(logits, &targets);
                    t.backward(loss);
                    store.zero_grads();
                    t.accumulate_grads(&mut store);
                    store.clip_grad_norm(5.0);
                    opt.step(&mut store);
                });
            }
        }
        trained(&store)
    }
}

/// Collects a batch's pair endpoints: unique seed nodes (first-appearance
/// order) plus the pairs' endpoint positions within them.
pub(crate) fn batch_pairs(
    us: &[usize],
    vs: &[usize],
    labels: &[f64],
    chunk: &[usize],
) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut seeds = Vec::new();
    let mut pos: HashMap<usize, usize> = HashMap::new();
    let mut local = |node: usize, seeds: &mut Vec<usize>| -> usize {
        let next = seeds.len();
        *pos.entry(node).or_insert_with(|| {
            seeds.push(node);
            next
        })
    };
    let mut u_loc = Vec::with_capacity(chunk.len());
    let mut v_loc = Vec::with_capacity(chunk.len());
    let mut lab = Vec::with_capacity(chunk.len());
    for &i in chunk {
        u_loc.push(local(us[i], &mut seeds));
        v_loc.push(local(vs[i], &mut seeds));
        lab.push(labels[i]);
    }
    (seeds, u_loc, v_loc, lab)
}

/// Two-layer GraphSAGE forward over blocks on a tape. The seed nodes'
/// embeddings come out as the rows of the returned var, in the order of
/// `blocks.last().dst_nodes()`.
#[allow(clippy::too_many_arguments)]
fn sage_forward_tape(
    tape: &mut Tape,
    store: &ParamStore,
    blocks: &[Block],
    features: &Matrix,
    w_self1: tg_autograd::ParamId,
    w_neigh1: tg_autograd::ParamId,
    w_self2: tg_autograd::ParamId,
    w_neigh2: tg_autograd::ParamId,
) -> tg_autograd::Var {
    let x = tape.constant(gather_rows(features, blocks[0].src_nodes()));
    let a0 = tape.constant(block_mean_matrix(&blocks[0]));
    let ws1 = tape.param(store, w_self1);
    let wn1 = tape.param(store, w_neigh1);
    let x_dst = tape.gather_rows(x, (0..blocks[0].num_dst()).collect());
    let self1 = tape.matmul(x_dst, ws1);
    let agg_in = tape.matmul(a0, x);
    let neigh1 = tape.matmul(agg_in, wn1);
    let h1 = tape.add(self1, neigh1);
    let h1 = tape.relu(h1);

    let a1 = tape.constant(block_mean_matrix(&blocks[1]));
    let ws2 = tape.param(store, w_self2);
    let wn2 = tape.param(store, w_neigh2);
    let h1_dst = tape.gather_rows(h1, (0..blocks[1].num_dst()).collect());
    let self2 = tape.matmul(h1_dst, ws2);
    let agg_h1 = tape.matmul(a1, h1);
    let neigh2 = tape.matmul(agg_h1, wn2);
    let h2 = tape.add(self2, neigh2);
    tape.row_l2_normalize(h2)
}

impl GraphLearner for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSAGE"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        let n = graph.num_nodes();
        assert_eq!(features.rows(), n, "GraphSage: feature rows != nodes");
        let f = features.cols();
        let a_hat = mean_adjacency(graph);
        let set = build_linkpred_set(graph, rng);
        if set.is_empty() {
            return Matrix::zeros(n, self.dim);
        }
        let targets = Matrix::from_vec(set.len(), 1, set.labels.clone());

        let mut store = ParamStore::new();
        let w_self1 = store.add("sage.w_self1", xavier_init(rng, f, self.hidden));
        let w_neigh1 = store.add("sage.w_neigh1", xavier_init(rng, f, self.hidden));
        let w_self2 = store.add("sage.w_self2", xavier_init(rng, self.hidden, self.dim));
        let w_neigh2 = store.add("sage.w_neigh2", xavier_init(rng, self.hidden, self.dim));
        let mut opt = Adam::new(self.lr);

        let mut final_emb = Matrix::zeros(n, self.dim);
        for epoch in 0..=self.epochs {
            let mut tape = Tape::new();
            let x = tape.constant(features.clone());
            let adj = tape.constant(a_hat.clone());
            // Layer 1: h = ReLU(X W_s + Â X W_n)  (Eq. 4, sum combine).
            let ws1 = tape.param(&store, w_self1);
            let wn1 = tape.param(&store, w_neigh1);
            let self1 = tape.matmul(x, ws1);
            let agg_in = tape.matmul(adj, x);
            let neigh1 = tape.matmul(agg_in, wn1);
            let h1 = tape.add(self1, neigh1);
            let h1 = tape.relu(h1);
            // Layer 2, then row-L2 normalisation (standard GraphSAGE).
            let ws2 = tape.param(&store, w_self2);
            let wn2 = tape.param(&store, w_neigh2);
            let self2 = tape.matmul(h1, ws2);
            let agg_h1 = tape.matmul(adj, h1);
            let neigh2 = tape.matmul(agg_h1, wn2);
            let h2 = tape.add(self2, neigh2);
            let emb = tape.row_l2_normalize(h2);

            if epoch == self.epochs {
                final_emb = tape.value(emb).clone();
                break;
            }

            // Dot-product link prediction head.
            let eu = tape.gather_rows(emb, set.us.clone());
            let ev = tape.gather_rows(emb, set.vs.clone());
            let prod = tape.mul_elem(eu, ev);
            let raw = tape.row_sum(prod);
            // Temperature: unit-norm dots live in [-1,1]; scale so the
            // sigmoid can saturate.
            let logits = tape.scalar_mul(raw, 5.0);
            let loss = tape.bce_with_logits(logits, &targets);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_grads(&mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        final_emb
    }
}

/// [`GraphLearner`] adapter for the minibatch driver: trains with
/// neighbour-sampled blocks, then embeds every node inductively. Lets the
/// evaluation pipeline swap `GraphSage` for its minibatch twin without
/// other changes (used by the parity gate of the `minibatch` bench).
#[derive(Clone, Debug)]
pub struct MiniGraphSage {
    /// The underlying architecture/hyperparameters.
    pub inner: GraphSage,
    /// Sampling and batching configuration.
    pub cfg: MinibatchConfig,
}

impl MiniGraphSage {
    /// Minibatch GraphSAGE with the given output dimension, sampling
    /// config from the environment.
    pub fn with_dim(dim: usize) -> Self {
        MiniGraphSage {
            inner: GraphSage::with_dim(dim),
            cfg: MinibatchConfig::from_env(),
        }
    }
}

impl GraphLearner for MiniGraphSage {
    fn name(&self) -> &'static str {
        "GraphSAGE-mb"
    }

    fn dim(&self) -> usize {
        self.inner.dim
    }

    fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut Rng) -> Matrix {
        if graph.edges().is_empty() {
            return Matrix::zeros(graph.num_nodes(), self.inner.dim);
        }
        let trained = self.inner.train_minibatch(graph, features, rng, &self.cfg);
        trained.embed_all(graph, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::fixtures::two_cliques;
    use tg_graph::NodeKind;
    use tg_linalg::distance::cosine_similarity;
    use tg_zoo::ModelId;

    #[test]
    fn embedding_shape_and_finite() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r + c) as f64 * 0.37).sin());
        let sage = GraphSage {
            epochs: 30,
            ..GraphSage::with_dim(8)
        };
        let emb = sage.embed(&g, &features, &mut Rng::seed_from_u64(1));
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
    }

    #[test]
    fn clique_members_embed_together() {
        let g = two_cliques();
        // Features weakly indicate the clique.
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 0.9).sin() * 0.3
        });
        let sage = GraphSage {
            epochs: 80,
            ..GraphSage::with_dim(8)
        };
        let emb = sage.embed(&g, &features, &mut Rng::seed_from_u64(2));
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }

    #[test]
    fn empty_linkpred_yields_zeros() {
        // Graph with nodes but no edges at all.
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(NodeKind::Model(ModelId(i)));
        }
        let features = Matrix::zeros(3, 2);
        let sage = GraphSage::with_dim(4);
        let emb = sage.embed(&g, &features, &mut Rng::seed_from_u64(3));
        assert_eq!(emb.shape(), (3, 4));
    }

    #[test]
    fn minibatch_training_embeds_cliques_together() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| {
            let side = if r < 4 { 1.0 } else { -1.0 };
            side * 0.5 + ((r * 4 + c) as f64 * 0.9).sin() * 0.3
        });
        let sage = GraphSage {
            epochs: 80,
            ..GraphSage::with_dim(8)
        };
        let cfg = MinibatchConfig {
            fanouts: vec![3, 3],
            batch: 8,
            epochs: None,
        };
        let trained = sage.train_minibatch(&g, &features, &mut Rng::seed_from_u64(2), &cfg);
        let emb = trained.embed_all(&g, &features);
        assert_eq!(emb.shape(), (8, 8));
        assert!(!emb.has_non_finite());
        let within = cosine_similarity(emb.row(0), emb.row(1));
        let cross = cosine_similarity(emb.row(0), emb.row(5));
        assert!(within > cross, "within {within} cross {cross}");
    }

    #[test]
    fn inductive_embedding_is_deterministic_and_matches_embed_all() {
        let g = two_cliques();
        let features = Matrix::from_fn(8, 4, |r, c| ((r * 2 + c) as f64 * 0.53).cos());
        let sage = GraphSage {
            epochs: 15,
            ..GraphSage::with_dim(8)
        };
        let cfg = MinibatchConfig::default();
        let trained = sage.train_minibatch(&g, &features, &mut Rng::seed_from_u64(5), &cfg);
        let all = trained.embed_all(&g, &features);
        let some = trained.embed_nodes(&g, &features, &[3, 6]);
        // Same node, same weights, same inference sampler → same row up to
        // summation-order rounding (the sampled frontier is ordered by
        // seed-set, so accumulation order differs between the two calls).
        for c in 0..8 {
            assert!((some.get(0, c) - all.get(3, c)).abs() < 1e-12);
            assert!((some.get(1, c) - all.get(6, c)).abs() < 1e-12);
        }
        // Identical call → bit-identical result.
        let again = trained.embed_nodes(&g, &features, &[3, 6]);
        assert_eq!(some.as_slice(), again.as_slice());
    }

    #[test]
    fn batch_pairs_maps_endpoints_consistently() {
        let us = vec![0, 2, 4];
        let vs = vec![2, 3, 0];
        let labels = vec![1.0, 0.0, 1.0];
        let (seeds, ul, vl, lab) = batch_pairs(&us, &vs, &labels, &[0, 1, 2]);
        assert_eq!(seeds, vec![0, 2, 3, 4]);
        assert_eq!(ul, vec![0, 1, 3]);
        assert_eq!(vl, vec![1, 2, 0]);
        assert_eq!(lab, labels);
    }
}
