#!/bin/sh
# Regenerates every experiment output in results/ (used by EXPERIMENTS.md).
set -x
cd "$(dirname "$0")"
B=./target/release
$B/fig2 > results/fig2.txt 2>&1
$B/fig6 > results/fig6.txt 2>&1
$B/fig7 > results/fig7.txt 2>&1
$B/fig8 > results/fig8.txt 2>&1
$B/fig9 > results/fig9.txt 2>&1
$B/fig10 > results/fig10.txt 2>&1
$B/fig11 > results/fig11.txt 2>&1
$B/fig12 > results/fig12.txt 2>&1
$B/fig13 > results/fig13.txt 2>&1
$B/table2 > results/table2.txt 2>&1
$B/table3 > results/table3.txt 2>&1
$B/ext_estimators > results/ext_estimators.txt 2>&1
$B/ext_baselines > results/ext_baselines.txt 2>&1
$B/ext_spearman > results/ext_spearman.txt 2>&1
$B/ext_budget > results/ext_budget.txt 2>&1
$B/ext_walks > results/ext_walks.txt 2>&1
$B/ext_dynamic > results/ext_dynamic.txt 2>&1
$B/ext_explain > results/ext_explain.txt 2>&1
$B/ext_embedding_map > results/ext_embedding_map.txt 2>&1
$B/calibrate > results/calibrate.txt 2>&1
touch results/.reruns_done
