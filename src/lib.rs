//! Workspace root crate for the TransferGraph reproduction.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`. It re-exports every subsystem so examples
//! can use a single dependency:
//!
//! ```
//! use transfergraph_repro::prelude::*;
//! let mut rng = Rng::seed_from_u64(1);
//! assert!(rng.uniform() < 1.0);
//! ```

pub use tg_autograd as autograd;
pub use tg_embed as embed;
pub use tg_graph as graph;
pub use tg_linalg as linalg;
pub use tg_predict as predict;
pub use tg_rng as rng;
pub use tg_transfer as transfer;
pub use tg_zoo as zoo;
pub use transfergraph as core;

/// Commonly used items across examples and integration tests.
pub mod prelude {
    pub use tg_rng::Rng;
}
