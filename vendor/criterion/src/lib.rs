//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no crates.io access, so the real criterion cannot
//! be fetched. This crate implements the subset of its API the workspace's
//! benches use — `Criterion`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timer: each
//! benchmark runs one warm-up iteration followed by `sample_size` timed
//! iterations, reporting min/mean per-iteration time. No statistical
//! analysis, plots, or baseline comparison.

use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark (upstream `BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendering just the parameter (upstream
    /// `BenchmarkId::from_parameter`).
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-benchmark timing callback holder (upstream `Bencher`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up iteration outside the measurement.
        std::hint::black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {mean:>12?}  min {min:>12?}  ({} samples)",
        samples.len()
    );
}

fn run_bench(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    report(label, &b.samples);
}

/// A named group of related benchmarks (upstream `BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.effective_sample_size(), f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    /// Ends the group (upstream requires this; here it is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point (upstream `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }
}

/// Declares a benchmark group function (upstream `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main` (upstream `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6); // 5 samples + 1 warm-up
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(3).bench_function("f", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let input = 41;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &input, |b, &i| {
            b.iter(|| i + 1);
            assert_eq!(i, 41);
        });
    }
}
