//! The [`Strategy`] trait and implementations for primitive ranges.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (upstream
/// `proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for crate::bool::Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let f = (-3.0f64..7.0).generate(&mut rng);
            assert!((-3.0..7.0).contains(&f));
            let u = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&u));
            let z = (2usize..5).generate(&mut rng);
            assert!((2..5).contains(&z));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..10)
                .map(|_| (0.0f64..1.0).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
