//! The [`Strategy`] trait and implementations for primitive ranges.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (upstream
/// `proptest::strategy::Strategy`, with greedy halving-based shrinking in
/// place of upstream's lazy shrink trees).
pub trait Strategy {
    /// The generated type. `Clone` because the shrinker keeps the current
    /// smallest failing value while probing candidates.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing `value`, in
    /// decreasing order of ambition (jump to the minimum, halve the
    /// distance, step once). The runner greedily accepts the first
    /// candidate that still fails and repeats until none do, so candidates
    /// must move toward a fixpoint. The default is no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let half = self.start + (value - self.start) / 2.0;
            if half != *value && half != self.start {
                out.push(half);
            }
        }
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != self.start {
                    // Jump to the minimum, halve, then single-step: halving
                    // closes in fast and the decrement makes the fixpoint
                    // the exact smallest failing value.
                    out.push(self.start);
                    let half = self.start + (*value - self.start) / 2;
                    if half != *value && half != self.start {
                        out.push(half);
                    }
                    let step = *value - 1;
                    if step != self.start && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for crate::bool::Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// Tuples of strategies generate (and shrink) tuples of values, one
// component at a time. This is what `proptest!` builds from its argument
// list: component generation order matches the old inline expansion, so
// persisted regression seeds replay to the same inputs. Explicit indices
// (`$idx:tt`) are spelled out per arity because macro repetition cannot
// index tuple fields positionally.
macro_rules! tuple_strategy {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut t = value.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!((A, 0));
tuple_strategy!((A, 0), (B, 1));
tuple_strategy!((A, 0), (B, 1), (C, 2));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let f = (-3.0f64..7.0).generate(&mut rng);
            assert!((-3.0..7.0).contains(&f));
            let u = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&u));
            let z = (2usize..5).generate(&mut rng);
            assert!((2..5).contains(&z));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..10)
                .map(|_| (0.0f64..1.0).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn int_shrink_candidates_move_toward_start() {
        let strat = 3u64..100;
        let cands = strat.shrink(&40);
        assert_eq!(cands, vec![3, 21, 39]);
        assert!(strat.shrink(&3).is_empty(), "minimum has no candidates");
        // Candidates never leave the range or repeat the value.
        for v in 4..100 {
            for c in strat.shrink(&v) {
                assert!((3..100).contains(&c) && c < v);
            }
        }
    }

    #[test]
    fn f64_shrink_halves_toward_start() {
        let strat = -1.0f64..1.0;
        let cands = strat.shrink(&0.5);
        assert_eq!(cands, vec![-1.0, -0.25]);
        assert!(strat.shrink(&-1.0).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0u64..10, 0.0f64..1.0);
        let cands = strat.shrink(&(4, 0.5));
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            let changed_a = *a != 4;
            let changed_b = *b != 0.5;
            assert!(changed_a ^ changed_b, "exactly one component changes");
        }
    }

    #[test]
    fn tuple_generation_matches_inline_order() {
        // The tuple strategy must consume the RNG exactly like the former
        // per-argument inline expansion, so regression seeds still replay
        // to the same inputs.
        let strat = (0u64..100, 0.0f64..1.0, 0usize..7);
        let mut rng = TestRng::from_seed(99);
        let (a, b, c) = strat.generate(&mut rng);
        let mut rng = TestRng::from_seed(99);
        assert_eq!(a, (0u64..100).generate(&mut rng));
        assert_eq!(b, (0.0f64..1.0).generate(&mut rng));
        assert_eq!(c, (0usize..7).generate(&mut rng));
    }
}
