//! Deterministic case runner with regression-file replay.

/// Per-`proptest!` block configuration (upstream `ProptestConfig`, reduced).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` was not met: discard the case, draw another.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A discarded case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "assumption not met: {r}"),
        }
    }
}

/// SplitMix64-based generator driving all value generation. Deliberately
/// self-contained so the stand-in has no dependencies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in: empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// FNV-1a over a string, for mixing test names into seeds.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Locates `<source file stem>.proptest-regressions` next to the test source.
///
/// `file!()` paths are relative to the workspace root while the test binary
/// may run from a member crate's directory, so ancestor directories are
/// probed as well.
fn regression_file_for(source_file: &str) -> Option<std::path::PathBuf> {
    let direct = std::path::Path::new(source_file).with_extension("proptest-regressions");
    if direct.exists() {
        return Some(direct);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(&direct);
        if candidate.exists() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Decodes a persisted `cc <hex digest>` entry into a replay seed by folding
/// the digest bytes into 64 bits.
fn seed_from_cc_digest(hex: &str) -> Option<u64> {
    if hex.len() < 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    let mut seed = 0u64;
    let bytes: Vec<u8> = hex
        .as_bytes()
        .chunks(2)
        .filter_map(|pair| {
            let s = std::str::from_utf8(pair).ok()?;
            u8::from_str_radix(s, 16).ok()
        })
        .collect();
    for (i, b) in bytes.iter().enumerate() {
        seed ^= (*b as u64) << ((i % 8) * 8);
    }
    Some(seed)
}

/// Parses every persisted seed from a regression file.
fn persisted_seeds(path: &std::path::Path) -> Vec<u64> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let digest = rest.split_whitespace().next()?;
            seed_from_cc_digest(digest)
        })
        .collect()
}

/// Runs one property test: first replays every seed persisted in the
/// source file's `.proptest-regressions` sibling (upstream's persistence
/// semantics), then runs `config.cases` freshly generated cases.
///
/// `case` returns the case outcome plus a rendering of the generated inputs
/// for failure reports. Panics (with the offending inputs and seed) on the
/// first failing case; `TestCaseError::Reject` discards the case instead.
pub fn run_proptest(
    config: &ProptestConfig,
    source_file: &str,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> (Result<(), TestCaseError>, Vec<String>),
) {
    let mut run_one = |seed: u64, origin: &str| -> bool {
        let mut rng = TestRng::from_seed(seed);
        let (result, inputs) = case(&mut rng);
        match result {
            Ok(()) => true,
            Err(TestCaseError::Reject(_)) => false,
            Err(TestCaseError::Fail(reason)) => panic!(
                "proptest failure in `{test_name}` ({origin}, seed {seed:#018x}): \
                 {reason}\n  inputs: {}",
                inputs.join(", ")
            ),
        }
    };

    // Replay checked-in regressions before generating anything new.
    if let Some(path) = regression_file_for(source_file) {
        for seed in persisted_seeds(&path) {
            run_one(seed ^ hash_str(test_name), "persisted regression");
        }
    }

    // Fixed base seed: deterministic across runs and machines.
    let base = 0x7472_616e_7366_6572u64 ^ hash_str(test_name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16;
    while accepted < config.cases {
        assert!(
            attempts < max_attempts,
            "proptest `{test_name}`: too many rejected cases ({attempts} attempts \
             for {} accepted)",
            accepted
        );
        let seed = base
            .wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17);
        if run_one(seed, "generated case") {
            accepted += 1;
        }
        attempts += 1;
    }
}

/// Upper bound on accepted shrink steps, guarding against a strategy whose
/// candidates fail to converge.
const MAX_SHRINK_STEPS: usize = 10_000;

/// Strategy-aware variant of [`run_proptest`]: same seed schedule and
/// regression replay, but generation goes through a [`Strategy`] so failing
/// cases can be *shrunk*.
///
/// On a failure the runner greedily walks the strategy's shrink candidates:
/// it re-checks each candidate in order and restarts from the first one
/// that still fails, until no candidate fails (a fixpoint) or
/// `MAX_SHRINK_STEPS` (10 000) accepted steps. A `Reject` during shrinking counts
/// as passing (the candidate is skipped). The final panic reports the
/// shrunk inputs, the originating seed and the number of shrink steps.
///
/// [`Strategy`]: crate::strategy::Strategy
pub fn run_cases<S: crate::strategy::Strategy>(
    config: &ProptestConfig,
    source_file: &str,
    test_name: &str,
    strategy: &S,
    mut check: impl FnMut(&S::Value) -> Result<(), TestCaseError>,
    render: impl Fn(&S::Value) -> Vec<String>,
) {
    let mut run_one = |seed: u64, origin: &str| -> bool {
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.generate(&mut rng);
        match check(&value) {
            Ok(()) => true,
            Err(TestCaseError::Reject(_)) => false,
            Err(TestCaseError::Fail(reason)) => {
                // Greedy halving-based shrink: accept the first candidate
                // that still fails and restart from it.
                let mut current = value;
                let mut reason = reason;
                let mut steps = 0usize;
                'outer: while steps < MAX_SHRINK_STEPS {
                    for cand in strategy.shrink(&current) {
                        if let Err(TestCaseError::Fail(r)) = check(&cand) {
                            current = cand;
                            reason = r;
                            steps += 1;
                            continue 'outer;
                        }
                    }
                    break;
                }
                panic!(
                    "proptest failure in `{test_name}` ({origin}, seed {seed:#018x}, \
                     shrunk {steps} steps): {reason}\n  inputs: {}",
                    render(&current).join(", ")
                )
            }
        }
    };

    // Replay checked-in regressions before generating anything new.
    if let Some(path) = regression_file_for(source_file) {
        for seed in persisted_seeds(&path) {
            run_one(seed ^ hash_str(test_name), "persisted regression");
        }
    }

    // Fixed base seed: deterministic across runs and machines.
    let base = 0x7472_616e_7366_6572u64 ^ hash_str(test_name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16;
    while accepted < config.cases {
        assert!(
            attempts < max_attempts,
            "proptest `{test_name}`: too many rejected cases ({attempts} attempts \
             for {} accepted)",
            accepted
        );
        let seed = base
            .wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17);
        if run_one(seed, "generated case") {
            accepted += 1;
        }
        attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_digest_decodes_to_stable_seed() {
        let a =
            seed_from_cc_digest("b3f60244a73168e6e90f6ada59174ce48484b8d124eff560c02fa7aed67277d2");
        let b =
            seed_from_cc_digest("b3f60244a73168e6e90f6ada59174ce48484b8d124eff560c02fa7aed67277d2");
        assert_eq!(a, b);
        assert!(a.is_some());
        assert_ne!(a, seed_from_cc_digest("deadbeefdeadbeef"));
    }

    #[test]
    fn cc_digest_rejects_garbage() {
        assert_eq!(seed_from_cc_digest("xyz"), None);
        assert_eq!(seed_from_cc_digest("abcd"), None);
    }

    #[test]
    fn runner_passes_trivial_property() {
        run_proptest(
            &ProptestConfig::with_cases(8),
            "no/such/file.rs",
            "trivial",
            |rng| {
                let x = rng.unit_f64();
                (
                    if (0.0..1.0).contains(&x) {
                        Ok(())
                    } else {
                        Err(TestCaseError::fail("out of range"))
                    },
                    vec![format!("x = {x:?}")],
                )
            },
        );
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn runner_reports_failures() {
        run_proptest(
            &ProptestConfig::with_cases(4),
            "no/such/file.rs",
            "failing",
            |_| (Err(TestCaseError::fail("always fails")), vec![]),
        );
    }

    /// Runs `f`, which must panic, and returns the panic message.
    fn panic_message(f: impl FnOnce()) -> String {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .expect_err("expected a proptest failure");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    #[test]
    fn shrink_converges_to_minimal_failing_int() {
        let msg = panic_message(|| {
            run_cases(
                &ProptestConfig::with_cases(16),
                "no/such/file.rs",
                "min_int",
                &(0u64..1000),
                |&v| {
                    if v < 50 {
                        Ok(())
                    } else {
                        Err(TestCaseError::fail(format!("{v} >= 50")))
                    }
                },
                |v| vec![format!("v = {v:?}")],
            );
        });
        // Greedy halving plus the decrement candidate land on the exact
        // smallest failing value.
        assert!(msg.contains("inputs: v = 50"), "got: {msg}");
        assert!(msg.contains("shrunk"), "got: {msg}");
    }

    #[test]
    fn shrink_reduces_vec_length_and_elements() {
        let strategy = crate::collection::vec(0.0f64..1.0, 0..20usize);
        let msg = panic_message(|| {
            run_cases(
                &ProptestConfig::with_cases(16),
                "no/such/file.rs",
                "min_vec",
                &strategy,
                |v| {
                    if v.len() < 5 {
                        Ok(())
                    } else {
                        Err(TestCaseError::fail(format!("len {} >= 5", v.len())))
                    }
                },
                |v| vec![format!("v = {v:?}")],
            );
        });
        // Length shrinks stop at the minimal failing length (5) and the
        // element shrinks then zero every component.
        assert!(
            msg.contains("inputs: v = [0.0, 0.0, 0.0, 0.0, 0.0]"),
            "got: {msg}"
        );
    }

    #[test]
    fn shrink_treats_rejects_as_passing() {
        // A candidate that trips `prop_assume!` must not be accepted as the
        // new smallest failing input.
        let msg = panic_message(|| {
            run_cases(
                &ProptestConfig::with_cases(16),
                "no/such/file.rs",
                "reject_during_shrink",
                &(0u64..1000),
                |&v| {
                    if v < 10 {
                        Err(TestCaseError::reject("too small to judge"))
                    } else if v < 50 {
                        Ok(())
                    } else {
                        Err(TestCaseError::fail(format!("{v} >= 50")))
                    }
                },
                |v| vec![format!("v = {v:?}")],
            );
        });
        assert!(msg.contains("inputs: v = 50"), "got: {msg}");
    }

    #[test]
    fn runner_tolerates_occasional_rejects() {
        let mut n = 0u64;
        run_proptest(
            &ProptestConfig::with_cases(6),
            "no/such/file.rs",
            "rejecting",
            |_| {
                n += 1;
                if n.is_multiple_of(3) {
                    (Err(TestCaseError::reject("every third")), vec![])
                } else {
                    (Ok(()), vec![])
                }
            },
        );
    }
}
