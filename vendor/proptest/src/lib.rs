//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container for this repository has no access to crates.io, so the
//! real proptest cannot be fetched. This crate implements the subset of its
//! API that the workspace's property tests use, with the same surface
//! (`proptest!`, `prop_assert!`, `prop_assume!`, strategies for ranges,
//! collections and `any::<T>()`) so the test sources compile unchanged:
//!
//! * deterministic case generation (a fixed base seed mixed with the test
//!   name and case index), so failures reproduce across runs and machines;
//! * replay of checked-in `*.proptest-regressions` files: every `cc <hex>`
//!   entry is decoded to a seed and re-run before any new cases, matching
//!   upstream's persistence semantics;
//! * failure reports that print every generated input value and the case
//!   seed.
//!
//! * greedy halving-based shrinking: when a case fails, the runner
//!   repeatedly asks the strategy for smaller candidate inputs (jump to the
//!   range minimum, halve the distance, drop/zero vector elements) and
//!   keeps the first candidate that still fails, reporting the fixpoint —
//!   a simpler eager variant of upstream's lazy shrink trees.
//!
//! New failures are not appended to the regression file (the file is
//! treated as a read-only fixture).

pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Strategies for `bool` (upstream `proptest::bool`).

    /// Strategy type yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (upstream `proptest::bool::ANY`).
    pub const ANY: Any = Any;
}

pub mod collection {
    //! Strategies for collections (upstream `proptest::collection`).

    use crate::strategy::Strategy;

    /// Admissible lengths for a generated `Vec` (upstream `SizeRange`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        /// Exclusive upper bound.
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "SizeRange: empty range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy and a size specification
    /// (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let len = value.len();
            // Length shrinks first (the biggest simplification): halve from
            // the front, halve from the back, then drop single elements —
            // never below the strategy's minimum length.
            let half = (len / 2).max(self.size.lo);
            if half < len {
                out.push(value[..half].to_vec());
                out.push(value[len - half..].to_vec());
            }
            if len > self.size.lo {
                for i in 0..len {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Then element shrinks at the fixed length.
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Types implementing a canonical "any value" strategy (upstream
/// `proptest::arbitrary::Arbitrary`, reduced to what the workspace needs).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value of `Self`.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;

    /// Shrink candidates for a failing value (see
    /// [`strategy::Strategy::shrink`]). Defaults to none.
    fn shrink(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64()
    }

    fn shrink(value: &Self) -> Vec<Self> {
        match *value {
            0 => Vec::new(),
            1 => vec![0],
            v => vec![0, v / 2, v - 1],
        }
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() as u32
    }

    fn shrink(value: &Self) -> Vec<Self> {
        match *value {
            0 => Vec::new(),
            1 => vec![0],
            v => vec![0, v / 2, v - 1],
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }

    fn shrink(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Strategy over every value of `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary + std::fmt::Debug + Clone> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

pub mod prelude {
    //! The glob-import surface test files use (`use proptest::prelude::*`).

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary};
}

/// Defines property tests. Mirrors upstream `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0.0f64..1.0, 3..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            // One tuple strategy over every argument: the tuple generates
            // components in declaration order (seed-compatible with the old
            // inline expansion) and shrinks one component at a time.
            let __strategy = ($(($strat),)+);
            $crate::test_runner::run_cases(
                &__cfg,
                file!(),
                stringify!($name),
                &__strategy,
                |__value| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__value);
                    $(let _ = &$arg;)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    __result
                },
                |__value| {
                    let ($($arg,)+) = __value;
                    ::std::vec![
                        $(::std::format!("{} = {:?}", stringify!($arg), $arg)),+
                    ]
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
}

/// Discards the current case (without failing) when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
