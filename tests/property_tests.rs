//! Property-based tests (proptest) over cross-crate invariants.

use proptest::prelude::*;
use transfergraph_repro::linalg::{decomp, distance, stats, Matrix};
use transfergraph_repro::rng::{AliasTable, Rng};

/// Gram-vs-SVD parity bound for the *adversarial* shapes proptest shrinks
/// to (near-duplicate rows, forced off-heuristic wide matrices), where
/// squaring the spectrum through `FᵀF` costs up to half the digits. At the
/// production shapes the `Auto` heuristic actually routes to the Gram path
/// (`n ≥ 4·d`, benign conditioning) the observed deviation is ~1e-15 and
/// the bench gates `1e-6`.
const GRAM_PARITY_TOL: f64 = 1e-4;

/// Looser bound for the forced-wide case (`n ≪ d`): the Gram spectrum
/// there is rank-deficient by construction (`d − n` exact zeros) and the
/// surviving `n` directions carry the squared conditioning of
/// near-duplicate rows, so shrinking reliably finds deviations just past
/// `1e-4`. `Auto` never routes a wide matrix to the Gram path.
const GRAM_PARITY_TOL_WIDE: f64 = 1e-3;

/// Relative-or-absolute deviation of `b` from the reference `a`.
fn parity_dev(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pearson correlation is symmetric, bounded, and invariant under
    /// positive affine transforms.
    #[test]
    fn pearson_invariances(
        xs in prop::collection::vec(-1e3f64..1e3, 3..40),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, &x)| x * 0.5 + (i as f64).sin()).collect();
        if let (Some(r1), Some(r2)) = (stats::pearson(&xs, &ys), stats::pearson(&ys, &xs)) {
            prop_assert!((r1 - r2).abs() < 1e-10);
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r1));
            let zs: Vec<f64> = ys.iter().map(|y| y * scale + shift).collect();
            if let Some(r3) = stats::pearson(&xs, &zs) {
                prop_assert!((r1 - r3).abs() < 1e-8);
            }
        }
    }

    /// Spearman is invariant under any strictly monotone transform.
    #[test]
    fn spearman_monotone_invariance(xs in prop::collection::vec(-50f64..50.0, 4..30)) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * 2.0 + 1.0).collect();
        // Scale into exp's comfortable range so the transform stays
        // strictly monotone (no overflow clamping that would create ties).
        let zs: Vec<f64> = ys.iter().map(|&y| (y / 25.0).exp()).collect();
        if let (Some(a), Some(b)) = (stats::spearman(&xs, &ys), stats::spearman(&xs, &zs)) {
            prop_assert!((a - b).abs() < 1e-9, "a={a} b={b}");
        }
    }

    /// Ranks are a permutation-consistent assignment: they sum to n(n+1)/2.
    #[test]
    fn ranks_sum_invariant(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let r = stats::ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Cholesky solve really solves SPD systems built as A = BᵀB + I.
    #[test]
    fn cholesky_solves_spd(
        vals in prop::collection::vec(-2f64..2.0, 9),
        b in prop::collection::vec(-5f64..5.0, 3),
    ) {
        let m = Matrix::from_vec(3, 3, vals);
        let mut a = m.gram();
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x = decomp::cholesky_solve(&a, &b).unwrap();
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8, "Ax={l} b={r}");
        }
    }

    /// Thin SVD reconstructs arbitrary matrices.
    #[test]
    fn svd_reconstructs(
        vals in prop::collection::vec(-3f64..3.0, 12),
        tall in prop::bool::ANY,
    ) {
        let (r, c) = if tall { (4, 3) } else { (3, 4) };
        let a = Matrix::from_vec(r, c, vals);
        let svd = decomp::thin_svd(&a).unwrap();
        let k = svd.sigma.len();
        let sig = Matrix::from_fn(k, k, |i, j| if i == j { svd.sigma[i] } else { 0.0 });
        let rec = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..r {
            for j in 0..c {
                prop_assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-7);
            }
        }
    }

    /// Correlation distance is a bounded symmetric dissimilarity.
    #[test]
    fn correlation_distance_properties(
        xs in prop::collection::vec(-10f64..10.0, 4..20),
    ) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, &x)| x + (i as f64) * 0.1).collect();
        let d1 = distance::correlation_distance(&xs, &ys);
        let d2 = distance::correlation_distance(&ys, &xs);
        prop_assert!((d1 - d2).abs() < 1e-10);
        prop_assert!((-1e-12..=2.0 + 1e-12).contains(&d1));
        prop_assert!(distance::correlation_distance(&xs, &xs) < 1e-9);
    }

    /// Alias tables never emit an index with zero weight and always emit a
    /// valid index.
    #[test]
    fn alias_table_support(
        weights in prop::collection::vec(0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {i}");
        }
    }

    /// min-max normalisation maps into [0, 1] and preserves order.
    #[test]
    fn min_max_normalize_order_preserving(xs in prop::collection::vec(-1e3f64..1e3, 2..30)) {
        let normed = stats::min_max_normalize(&xs);
        prop_assert_eq!(normed.len(), xs.len());
        for v in &normed {
            prop_assert!((0.0..=1.0).contains(v));
        }
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] < xs[j] {
                    prop_assert!(normed[i] <= normed[j]);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fine-tune accuracies are always valid probabilities, for any model,
    /// dataset, and method in any seeded world.
    #[test]
    fn fine_tune_always_bounded(seed in 0u64..1000) {
        use transfergraph_repro::zoo::{FineTuneMethod, Modality, ModelZoo, ZooConfig};
        let zoo = ModelZoo::build(&ZooConfig::small(seed));
        for modality in [Modality::Image, Modality::Text] {
            let m = zoo.models_of(modality)[0];
            for &d in &zoo.targets_of(modality) {
                for method in [FineTuneMethod::Full, FineTuneMethod::Lora] {
                    let a = zoo.fine_tune(m, d, method);
                    prop_assert!((0.0..=1.0).contains(&a));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched LogME kernel on the SVD reference path is bit-identical
    /// to the scalar reference across random shapes (tall and wide), class
    /// counts, and labelings — including labelings where some classes get a
    /// single sample or none at all (random draws hit both regularly at
    /// these sizes). The path is pinned to `Svd` because the bit-identity
    /// contract belongs to that path; the default `Auto` heuristic may pick
    /// the Gram path (tolerance contract, asserted below) at tall shapes.
    #[test]
    fn logme_batched_matches_scalar_bitwise(
        n in 2usize..40,
        d in 1usize..9,
        num_classes in 2usize..7,
        vals in prop::collection::vec(-10f64..10.0, 40 * 8),
        raw_labels in prop::collection::vec(0usize..64, 40),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| vals[r * 8 + c]);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let batched = LogMe::batched()
            .with_path(DecompPath::Svd)
            .score(&features, &labels)
            .unwrap();
        let scalar = LogMe::scalar().score(&features, &labels).unwrap();
        prop_assert!(
            batched.to_bits() == scalar.to_bits(),
            "batched {batched:?} != scalar {scalar:?} at n={n} d={d} C={num_classes}"
        );
    }

    /// Bit-identity also holds on rank-deficient feature matrices: every
    /// column is a multiple of one base column, so the numerical rank is 1
    /// regardless of the requested width.
    #[test]
    fn logme_batched_matches_scalar_on_rank_deficient(
        n in 2usize..30,
        d in 2usize..9,
        num_classes in 2usize..5,
        base in prop::collection::vec(-5f64..5.0, 30),
        raw_labels in prop::collection::vec(0usize..64, 30),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| base[r] * (c + 1) as f64);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let batched = LogMe::batched()
            .with_path(DecompPath::Svd)
            .score(&features, &labels)
            .unwrap();
        let scalar = LogMe::scalar().score(&features, &labels).unwrap();
        prop_assert!(batched.to_bits() == scalar.to_bits());
    }

    /// The Gram path agrees with the SVD reference path within the
    /// documented `1e-6` tolerance on arbitrary random shapes — the paths
    /// share the same mathematical evidence and differ only in rounding.
    #[test]
    fn logme_gram_path_matches_svd_within_tolerance(
        n in 2usize..40,
        d in 1usize..9,
        num_classes in 2usize..7,
        vals in prop::collection::vec(-10f64..10.0, 40 * 8),
        raw_labels in prop::collection::vec(0usize..64, 40),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| vals[r * 8 + c]);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let svd = LogMe::batched().with_path(DecompPath::Svd).score(&features, &labels).unwrap();
        let gram = LogMe::batched().with_path(DecompPath::Gram).score(&features, &labels).unwrap();
        let dev = parity_dev(svd, gram);
        prop_assert!(dev <= GRAM_PARITY_TOL, "svd {svd} gram {gram} dev {dev:.3e} at n={n} d={d}");
    }

    /// Gram-vs-SVD parity holds on rank-deficient matrices (rank 1 by
    /// construction): the dropped σ≈0 directions contribute the same
    /// residual mass and `ln α` terms on both paths.
    #[test]
    fn logme_gram_path_parity_on_rank_deficient(
        n in 2usize..30,
        d in 2usize..9,
        num_classes in 2usize..5,
        base in prop::collection::vec(-5f64..5.0, 30),
        raw_labels in prop::collection::vec(0usize..64, 30),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| base[r] * (c + 1) as f64);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let svd = LogMe::batched().with_path(DecompPath::Svd).score(&features, &labels).unwrap();
        let gram = LogMe::batched().with_path(DecompPath::Gram).score(&features, &labels).unwrap();
        let dev = parity_dev(svd, gram);
        prop_assert!(dev <= GRAM_PARITY_TOL, "svd {svd} gram {gram} dev {dev:.3e}");
    }

    /// Gram-vs-SVD parity holds on ill-conditioned matrices: column `c` is
    /// scaled by `10^{-c}`, giving condition numbers up to ~1e8 at d=9.
    /// Squaring the spectrum through the Gram matrix loses small singular
    /// values first, but the evidence tolerates it — tiny σ directions are
    /// clamped identically on both paths.
    #[test]
    fn logme_gram_path_parity_on_ill_conditioned(
        n in 4usize..30,
        d in 2usize..9,
        num_classes in 2usize..5,
        vals in prop::collection::vec(-5f64..5.0, 30 * 9),
        raw_labels in prop::collection::vec(0usize..64, 30),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| vals[r * 9 + c] * 10f64.powi(-(c as i32)));
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let svd = LogMe::batched().with_path(DecompPath::Svd).score(&features, &labels).unwrap();
        let gram = LogMe::batched().with_path(DecompPath::Gram).score(&features, &labels).unwrap();
        let dev = parity_dev(svd, gram);
        prop_assert!(dev <= GRAM_PARITY_TOL, "svd {svd} gram {gram} dev {dev:.3e} at n={n} d={d}");
    }

    /// Gram-vs-SVD parity at the wide extreme (n ≪ d), where the Gram
    /// spectrum carries d−n exact zeros that must reproduce the SVD path's
    /// rank bookkeeping.
    #[test]
    fn logme_gram_path_parity_wide(
        n in 2usize..6,
        d in 8usize..16,
        num_classes in 2usize..4,
        vals in prop::collection::vec(-10f64..10.0, 6 * 16),
        raw_labels in prop::collection::vec(0usize..64, 6),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| vals[r * 16 + c]);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let svd = LogMe::batched().with_path(DecompPath::Svd).score(&features, &labels).unwrap();
        let gram = LogMe::batched().with_path(DecompPath::Gram).score(&features, &labels).unwrap();
        let dev = parity_dev(svd, gram);
        prop_assert!(
            dev <= GRAM_PARITY_TOL_WIDE,
            "svd {svd} gram {gram} dev {dev:.3e} at n={n} d={d}"
        );
    }

    /// Gram-vs-SVD parity at the tall extreme (n ≫ d) — the regime the
    /// Auto heuristic sends down the Gram path in production.
    #[test]
    fn logme_gram_path_parity_tall(
        n in 50usize..120,
        d in 2usize..5,
        num_classes in 2usize..5,
        vals in prop::collection::vec(-10f64..10.0, 120 * 4),
        raw_labels in prop::collection::vec(0usize..64, 120),
    ) {
        use transfergraph_repro::transfer::{DecompPath, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| vals[r * 4 + c]);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let svd = LogMe::batched().with_path(DecompPath::Svd).score(&features, &labels).unwrap();
        let gram = LogMe::batched().with_path(DecompPath::Gram).score(&features, &labels).unwrap();
        let dev = parity_dev(svd, gram);
        prop_assert!(dev <= GRAM_PARITY_TOL, "svd {svd} gram {gram} dev {dev:.3e} at n={n} d={d}");
    }

    /// Parallel Jacobi sweeps are bit-identical to sequential ones at any
    /// worker count: rotation pairs within a round are disjoint and rounds
    /// are barrier-separated, so the floating-point operation order never
    /// depends on scheduling.
    #[test]
    fn logme_jacobi_parallel_is_bit_identical_to_sequential(
        n in 2usize..25,
        d in 2usize..9,
        num_classes in 2usize..5,
        workers in 2usize..5,
        vals in prop::collection::vec(-10f64..10.0, 25 * 8),
        raw_labels in prop::collection::vec(0usize..64, 25),
    ) {
        use transfergraph_repro::transfer::{DecompPath, JacobiConfig, Labels, LogMe, Scorer};
        let features = Matrix::from_fn(n, d, |r, c| vals[r * 8 + c]);
        let labels_vec: Vec<usize> = raw_labels[..n].iter().map(|&l| l % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        let jacobi = LogMe::batched().with_path(DecompPath::Jacobi);
        let seq = jacobi.score(&features, &labels).unwrap();
        let par = jacobi
            .with_jacobi(JacobiConfig { workers, ..JacobiConfig::DEFAULT })
            .score(&features, &labels)
            .unwrap();
        prop_assert!(
            seq.to_bits() == par.to_bits(),
            "sequential {seq:?} != {workers}-worker {par:?} at n={n} d={d}"
        );
    }

    /// A label vector of the wrong length surfaces as `ScoreError` from
    /// every kernel — never a panic.
    #[test]
    fn logme_mismatched_labels_always_error(
        n in 2usize..20,
        wrong in 1usize..25,
        num_classes in 2usize..5,
    ) {
        use transfergraph_repro::transfer::{Labels, LogMe, ScoreError, Scorer};
        prop_assume!(wrong != n);
        let features = Matrix::from_fn(n, 3, |r, c| (r + c) as f64);
        let labels_vec: Vec<usize> = (0..wrong).map(|i| i % num_classes).collect();
        let labels = Labels::new(&labels_vec, num_classes).unwrap();
        for kernel in [LogMe::batched(), LogMe::scalar()] {
            let got = kernel.score(&features, &labels);
            prop_assert_eq!(
                got,
                Err(ScoreError::LabelCountMismatch { labels: wrong, rows: n })
            );
        }
    }
}
