//! Cross-crate integration tests: the full TransferGraph pipeline on a
//! small zoo, exercising every subsystem together.

use transfergraph_repro::core::{evaluate, EvalOptions, FeatureSet, Strategy, Workbench};
use transfergraph_repro::embed::LearnerKind;
use transfergraph_repro::predict::RegressorKind;
use transfergraph_repro::zoo::{FineTuneMethod, Modality, ModelZoo, ZooConfig};

fn small_zoo() -> ModelZoo {
    ModelZoo::build(&ZooConfig::small(2024))
}

fn fast_opts() -> EvalOptions {
    EvalOptions {
        embed_dim: 16,
        ..Default::default()
    }
}

#[test]
fn every_strategy_family_runs_on_every_modality() {
    let zoo = small_zoo();
    let strategies = [
        Strategy::Random,
        Strategy::LogMe,
        Strategy::lr_baseline(),
        Strategy::lr_all_logme(),
        Strategy::TransferGraph {
            regressor: RegressorKind::Linear,
            learner: LearnerKind::Node2Vec,
            features: FeatureSet::All,
        },
    ];
    for modality in [Modality::Image, Modality::Text] {
        let target = zoo.targets_of(modality)[0];
        let mut wb = Workbench::new(&zoo);
        for s in &strategies {
            let out = evaluate(&mut wb, s, target, &fast_opts());
            assert_eq!(out.predictions.len(), zoo.models_of(modality).len());
            assert!(
                out.predictions.iter().all(|p| p.is_finite()),
                "{} produced non-finite predictions",
                s.label()
            );
        }
    }
}

#[test]
fn all_four_graph_learners_work_end_to_end() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Image)[1];
    let mut wb = Workbench::new(&zoo);
    for learner in LearnerKind::ALL {
        let s = Strategy::TransferGraph {
            regressor: RegressorKind::Linear,
            learner,
            features: FeatureSet::GraphOnly,
        };
        let out = evaluate(&mut wb, &s, target, &fast_opts());
        assert!(
            out.pearson.is_some(),
            "{} degenerate predictions",
            learner.name()
        );
    }
}

#[test]
fn all_three_regressors_work_end_to_end() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Text)[0];
    let mut wb = Workbench::new(&zoo);
    for regressor in RegressorKind::ALL {
        let s = Strategy::TransferGraph {
            regressor,
            learner: LearnerKind::Node2VecPlus,
            features: FeatureSet::All,
        };
        let out = evaluate(&mut wb, &s, target, &fast_opts());
        assert!(out.predictions.iter().all(|p| p.is_finite()), "{}", s.label());
    }
}

#[test]
fn loo_does_not_leak_target_ground_truth() {
    // If LOO leaked, predictions would be near-perfectly correlated. The
    // world has irreducible noise, so a perfect correlation indicates a
    // leak.
    let zoo = small_zoo();
    let mut wb = Workbench::new(&zoo);
    for &target in &zoo.targets_of(Modality::Image) {
        let out = evaluate(
            &mut wb,
            &Strategy::transfer_graph_default(),
            target,
            &fast_opts(),
        );
        if let Some(r) = out.pearson {
            assert!(r < 0.999, "suspiciously perfect correlation: {r}");
        }
    }
}

#[test]
fn pipeline_fully_deterministic_across_workbenches() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Image)[0];
    let s = Strategy::TransferGraph {
        regressor: RegressorKind::RandomForest,
        learner: LearnerKind::Node2VecPlus,
        features: FeatureSet::All,
    };
    let run = || {
        let mut wb = Workbench::new(&zoo);
        evaluate(&mut wb, &s, target, &fast_opts()).predictions
    };
    assert_eq!(run(), run());
}

#[test]
fn lora_and_full_histories_give_different_but_correlated_rankings() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Text)[1];
    let s = Strategy::lr_all_logme();
    let full = {
        let mut wb = Workbench::new(&zoo);
        evaluate(&mut wb, &s, target, &fast_opts())
    };
    let lora = {
        let mut wb = Workbench::new(&zoo);
        let opts = EvalOptions {
            train_method: FineTuneMethod::Lora,
            eval_method: FineTuneMethod::Lora,
            ..fast_opts()
        };
        evaluate(&mut wb, &s, target, &opts)
    };
    assert_ne!(full.predictions, lora.predictions);
    // Ground truths of the two channels correlate strongly.
    let r = tg_linalg::stats::pearson(&full.ground_truth, &lora.ground_truth).unwrap();
    assert!(r > 0.6, "full/LoRA ground truths should correlate: {r}");
}

#[test]
fn better_information_improves_mean_correlation() {
    // The paper's central claim at small scale: averaged over targets,
    // adding relationship information must not hurt.
    let zoo = ModelZoo::build(&ZooConfig::small(7));
    let opts = fast_opts();
    let mean_tau = |s: &Strategy| {
        let mut wb = Workbench::new(&zoo);
        let targets = zoo.targets_of(Modality::Image);
        targets
            .iter()
            .map(|&t| evaluate(&mut wb, s, t, &opts).pearson.unwrap_or(0.0))
            .sum::<f64>()
            / targets.len() as f64
    };
    let random = mean_tau(&Strategy::Random);
    let learned = mean_tau(&Strategy::lr_all_logme());
    assert!(
        learned > random + 0.1,
        "learned {learned} should clearly beat random {random}"
    );
}
