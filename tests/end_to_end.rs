//! Cross-crate integration tests: the full TransferGraph pipeline on a
//! small zoo, exercising every subsystem together.

use transfergraph_repro::core::{
    evaluate, EvalOptions, FeatureSet, StoreOptions, Strategy, Workbench,
};
use transfergraph_repro::embed::LearnerKind;
use transfergraph_repro::predict::RegressorKind;
use transfergraph_repro::zoo::{FineTuneMethod, Modality, ModelZoo, ZooConfig};

fn small_zoo() -> ModelZoo {
    ModelZoo::build(&ZooConfig::small(2024))
}

fn fast_opts() -> EvalOptions {
    EvalOptions {
        embed_dim: 16,
        ..Default::default()
    }
}

#[test]
fn every_strategy_family_runs_on_every_modality() {
    let zoo = small_zoo();
    let strategies = [
        Strategy::Random,
        Strategy::LogMe,
        Strategy::lr_baseline(),
        Strategy::lr_all_logme(),
        Strategy::TransferGraph {
            regressor: RegressorKind::Linear,
            learner: LearnerKind::Node2Vec,
            features: FeatureSet::All,
        },
    ];
    for modality in [Modality::Image, Modality::Text] {
        let target = zoo.targets_of(modality)[0];
        let wb = Workbench::new(&zoo);
        for s in &strategies {
            let out = evaluate(&wb, s, target, &fast_opts());
            assert_eq!(out.predictions.len(), zoo.models_of(modality).len());
            assert!(
                out.predictions.iter().all(|p| p.is_finite()),
                "{} produced non-finite predictions",
                s.label()
            );
        }
    }
}

#[test]
fn all_four_graph_learners_work_end_to_end() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Image)[1];
    let wb = Workbench::new(&zoo);
    for learner in LearnerKind::ALL {
        let s = Strategy::TransferGraph {
            regressor: RegressorKind::Linear,
            learner,
            features: FeatureSet::GraphOnly,
        };
        let out = evaluate(&wb, &s, target, &fast_opts());
        assert!(
            out.pearson.is_some(),
            "{} degenerate predictions",
            learner.name()
        );
    }
}

#[test]
fn all_three_regressors_work_end_to_end() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Text)[0];
    let wb = Workbench::new(&zoo);
    for regressor in RegressorKind::ALL {
        let s = Strategy::TransferGraph {
            regressor,
            learner: LearnerKind::Node2VecPlus,
            features: FeatureSet::All,
        };
        let out = evaluate(&wb, &s, target, &fast_opts());
        assert!(
            out.predictions.iter().all(|p| p.is_finite()),
            "{}",
            s.label()
        );
    }
}

#[test]
fn loo_does_not_leak_target_ground_truth() {
    // If LOO leaked, predictions would be near-perfectly correlated. The
    // world has irreducible noise, so a perfect correlation indicates a
    // leak.
    let zoo = small_zoo();
    let wb = Workbench::new(&zoo);
    for &target in &zoo.targets_of(Modality::Image) {
        let out = evaluate(
            &wb,
            &Strategy::transfer_graph_default(),
            target,
            &fast_opts(),
        );
        if let Some(r) = out.pearson {
            assert!(r < 0.999, "suspiciously perfect correlation: {r}");
        }
    }
}

#[test]
fn pipeline_fully_deterministic_across_workbenches() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Image)[0];
    let s = Strategy::TransferGraph {
        regressor: RegressorKind::RandomForest,
        learner: LearnerKind::Node2VecPlus,
        features: FeatureSet::All,
    };
    let run = || {
        let wb = Workbench::new(&zoo);
        evaluate(&wb, &s, target, &fast_opts()).predictions
    };
    assert_eq!(run(), run());
}

#[test]
fn lora_and_full_histories_give_different_but_correlated_rankings() {
    let zoo = small_zoo();
    let target = zoo.targets_of(Modality::Text)[1];
    let s = Strategy::lr_all_logme();
    let full = {
        let wb = Workbench::new(&zoo);
        evaluate(&wb, &s, target, &fast_opts())
    };
    let lora = {
        let wb = Workbench::new(&zoo);
        let opts = EvalOptions {
            train_method: FineTuneMethod::Lora,
            eval_method: FineTuneMethod::Lora,
            ..fast_opts()
        };
        evaluate(&wb, &s, target, &opts)
    };
    assert_ne!(full.predictions, lora.predictions);
    // Ground truths of the two channels correlate strongly.
    let r = tg_linalg::stats::pearson(&full.ground_truth, &lora.ground_truth).unwrap();
    assert!(r > 0.6, "full/LoRA ground truths should correlate: {r}");
}

#[test]
fn better_information_improves_mean_correlation() {
    // The paper's central claim at small scale: averaged over targets,
    // adding relationship information must not hurt.
    let zoo = ModelZoo::build(&ZooConfig::small(7));
    let opts = fast_opts();
    let mean_tau = |s: &Strategy| {
        let wb = Workbench::new(&zoo);
        let targets = zoo.targets_of(Modality::Image);
        targets
            .iter()
            .map(|&t| evaluate(&wb, s, t, &opts).pearson.unwrap_or(0.0))
            .sum::<f64>()
            / targets.len() as f64
    };
    let random = mean_tau(&Strategy::Random);
    let learned = mean_tau(&Strategy::lr_all_logme());
    assert!(
        learned > random + 0.1,
        "learned {learned} should clearly beat random {random}"
    );
}

#[test]
fn parallel_runner_bit_identical_to_sequential_evaluate() {
    // The parallel LOO runner must reproduce plain sequential `evaluate`
    // calls bit-for-bit over every Image target — scheduling must never
    // leak into results.
    use transfergraph_repro::core::runner::{run_jobs_on, EvalJob};
    let zoo = small_zoo();
    let opts = fast_opts();
    let jobs: Vec<EvalJob> = zoo
        .targets_of(Modality::Image)
        .into_iter()
        .flat_map(|target| {
            [
                Strategy::Random,
                Strategy::LogMe,
                Strategy::lr_all_logme(),
                Strategy::transfer_graph_default(),
            ]
            .into_iter()
            .map(move |strategy| EvalJob { strategy, target })
        })
        .collect();
    let sequential: Vec<_> = {
        let wb = Workbench::new(&zoo);
        jobs.iter()
            .map(|j| evaluate(&wb, &j.strategy, j.target, &opts))
            .collect()
    };
    let wb = Workbench::new(&zoo);
    let summary = run_jobs_on(&wb, &jobs, &opts, 4);
    assert_eq!(summary.outcomes.len(), sequential.len());
    for (s, p) in sequential.iter().zip(&summary.outcomes) {
        assert_eq!(s.dataset, p.dataset);
        assert_eq!(s.strategy, p.strategy);
        assert_eq!(
            s.predictions, p.predictions,
            "parallel run diverged for {} on {:?}",
            s.strategy, s.dataset
        );
        assert_eq!(s.ground_truth, p.ground_truth);
        assert_eq!(s.pearson, p.pearson);
        assert_eq!(s.spearman, p.spearman);
    }
    // The run's summary accounts for the work it did.
    assert!(summary.stats.hits() + summary.stats.misses() > 0);
}

/// Fresh per-test artifact directory under the system temp dir.
fn temp_artifact_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tg-e2e-artifacts-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_from_disk_reproduces_cold_predictions_bit_identically() {
    let zoo = small_zoo();
    let dir = temp_artifact_dir("roundtrip");
    let target = zoo.targets_of(Modality::Image)[0];
    let strategies = [
        Strategy::LogMe,
        Strategy::lr_all_logme(),
        Strategy::transfer_graph_default(),
    ];

    let cold: Vec<Vec<f64>> = {
        let wb = Workbench::open(&zoo, StoreOptions::in_dir(&dir));
        let preds = strategies
            .iter()
            .map(|s| evaluate(&wb, s, target, &fast_opts()).predictions)
            .collect();
        let persisted = wb.persist().expect("persist artifacts");
        assert!(persisted.entries > 0 && persisted.bytes > 0);
        preds
    };

    // A second workbench over the same directory serves every feature from
    // the disk tier: zero recomputation, identical bits out.
    let wb = Workbench::open(&zoo, StoreOptions::in_dir(&dir));
    let before = wb.stats();
    let warm: Vec<Vec<f64>> = strategies
        .iter()
        .map(|s| evaluate(&wb, s, target, &fast_opts()).predictions)
        .collect();
    assert_eq!(cold, warm, "disk round-trip must be bit-identical");
    let delta = wb.stats().delta_since(&before);
    assert_eq!(delta.misses(), 0, "warm run must not recompute anything");
    assert!(delta.disk.hits > 0, "features must come from the disk tier");
    assert!(wb.stats().disk.bytes_read > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_artifacts_from_another_zoo_are_not_used() {
    let dir = temp_artifact_dir("fingerprint");
    {
        let zoo = small_zoo();
        let wb = Workbench::open(&zoo, StoreOptions::in_dir(&dir));
        let target = zoo.targets_of(Modality::Image)[0];
        evaluate(&wb, &Strategy::LogMe, target, &fast_opts());
        wb.persist().expect("persist artifacts");
    }
    // Same directory, different zoo config: the fingerprint must gate the
    // foreign artifacts out and everything recomputes.
    let other = ModelZoo::build(&ZooConfig::small(7));
    let wb = Workbench::open(&other, StoreOptions::in_dir(&dir));
    assert_eq!(wb.warm(), 0, "foreign fingerprints must not load");
    let target = other.targets_of(Modality::Image)[0];
    let out = evaluate(&wb, &Strategy::LogMe, target, &fast_opts());
    assert!(out.predictions.iter().all(|p| p.is_finite()));
    let stats = wb.stats();
    assert_eq!(stats.disk.hits, 0);
    assert!(stats.logme.1 > 0, "LogME must be recomputed from scratch");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_artifact_files_never_panic_and_fall_back_to_recompute() {
    let zoo = small_zoo();
    let dir = temp_artifact_dir("corrupt");
    let target = zoo.targets_of(Modality::Text)[0];
    let clean = {
        let wb = Workbench::open(&zoo, StoreOptions::in_dir(&dir));
        let out = evaluate(&wb, &Strategy::lr_all_logme(), target, &fast_opts());
        wb.persist().expect("persist artifacts");
        out.predictions
    };

    // Truncate one artifact file and replace another with garbage.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(files.len() >= 2, "expected several persisted caches");
    let bytes = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(&files[1], b"definitely not an artifact").unwrap();

    let wb = Workbench::open(&zoo, StoreOptions::in_dir(&dir));
    let out = evaluate(&wb, &Strategy::lr_all_logme(), target, &fast_opts());
    assert_eq!(out.predictions, clean, "recompute must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_eviction_with_disk_tier_reroutes_bit_identically_and_warm() {
    use transfergraph_repro::core::{RegistryOptions, ZooRegistry};
    let dir = temp_artifact_dir("registry");
    let registry = ZooRegistry::new(RegistryOptions {
        artifact_dir: Some(dir.clone()),
        max_zoos: Some(1),
        ..RegistryOptions::default()
    });
    let config = ZooConfig::small(2024);
    let strategy = Strategy::transfer_graph_default();
    let first = {
        let handle = registry.get_or_build(&config);
        let target = handle.zoo().targets_of(Modality::Image)[0];
        evaluate(handle.workbench(), &strategy, target, &fast_opts())
    };
    // Routing a second config exceeds the 1-zoo bound: the first handle is
    // evicted, persisting its artifacts to the shared directory first.
    registry.get_or_build(&ZooConfig::small(7));
    assert_eq!(registry.stats().evictions, 1);
    // Re-routing rebuilds the zoo, warms from the persisted artifacts, and
    // must reproduce the pre-eviction predictions bit-for-bit.
    let handle = registry.get_or_build(&config);
    let target = handle.zoo().targets_of(Modality::Image)[0];
    let rerouted = evaluate(handle.workbench(), &strategy, target, &fast_opts());
    assert_eq!(first.predictions, rerouted.predictions);
    assert_eq!(first.pearson, rerouted.pearson);
    assert!(
        handle.store().disk_stats().hits > 0,
        "re-route must serve the evicted handle's persisted artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_concurrent_routing_builds_each_zoo_once_and_serves_all_threads() {
    use transfergraph_repro::core::{RegistryOptions, ZooRegistry};
    let registry = ZooRegistry::new(RegistryOptions::default());
    let configs: Vec<ZooConfig> = (0..3).map(|i| ZooConfig::small(100 + i)).collect();
    // Registry-free oracle predictions, one per config.
    let oracle: Vec<Vec<f64>> = configs
        .iter()
        .map(|c| {
            let zoo = ModelZoo::build(c);
            let t = zoo.targets_of(Modality::Text)[0];
            evaluate(
                &Workbench::new(&zoo),
                &Strategy::lr_all_logme(),
                t,
                &fast_opts(),
            )
            .predictions
        })
        .collect();
    // Six threads race two-deep on each fingerprint; every one must get the
    // right zoo and the oracle's exact predictions.
    std::thread::scope(|scope| {
        for t in 0..6 {
            let (registry, configs, oracle) = (&registry, &configs, &oracle);
            scope.spawn(move || {
                let i = t % configs.len();
                let handle = registry.get_or_build(&configs[i]);
                assert_eq!(handle.fingerprint(), configs[i].fingerprint());
                let target = handle.zoo().targets_of(Modality::Text)[0];
                let out = evaluate(
                    handle.workbench(),
                    &Strategy::lr_all_logme(),
                    target,
                    &fast_opts(),
                );
                assert_eq!(out.predictions, oracle[i]);
            });
        }
    });
    let stats = registry.stats();
    assert_eq!(stats.builds, 3, "each fingerprint built exactly once");
    assert_eq!(stats.resident, 3);
    assert_eq!(stats.route_hits + stats.route_misses, 6);
}

#[test]
fn shared_workbench_survives_concurrent_hammering() {
    // Concurrency smoke test: ≥4 threads interleave every cache entry
    // point against one shared workbench; values must match a sequential
    // oracle computed on a separate instance.
    use transfergraph_repro::core::Representation;
    let zoo = small_zoo();
    let shared = Workbench::new(&zoo);
    let oracle = Workbench::new(&zoo);
    let models = zoo.models_of(Modality::Image);
    let targets = zoo.targets_of(Modality::Image);
    let threads = 6;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = &shared;
            let oracle = &oracle;
            let models = &models;
            let targets = &targets;
            scope.spawn(move || {
                // Each thread walks the grid from a different offset so
                // reads and writes of the same keys interleave.
                for k in 0..models.len() * targets.len() {
                    let i = (k + t * 7) % (models.len() * targets.len());
                    let (m, d) = (models[i % models.len()], targets[i / models.len()]);
                    assert_eq!(shared.logme(m, d), oracle.logme(m, d));
                    let d2 = targets[(i + 1) % targets.len()];
                    for rep in [Representation::DomainSimilarity, Representation::Task2Vec] {
                        assert_eq!(shared.similarity(d, d2, rep), oracle.similarity(d, d2, rep));
                        assert_eq!(shared.representation(d, rep), oracle.representation(d, rep));
                    }
                }
            });
        }
    });
    // Exactly one miss per distinct key ever reached the compute path on
    // the oracle; the shared bench may have raced a few duplicate computes
    // but must hold the same number of entries.
    assert_eq!(shared.logme_cache_len(), oracle.logme_cache_len());
    assert!(shared.stats().hits() > 0, "hammering must hit the cache");
}
