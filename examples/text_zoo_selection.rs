//! Text-zoo scenario: selecting among 163 NLP models (BERT, RoBERTa,
//! ELECTRA, FNet, …) for tweet classification — the modality where the
//! paper sees the largest gains from combining metadata, dataset distance,
//! and graph features.
//!
//! Also demonstrates using the lower-level estimator APIs directly.
//!
//! ```sh
//! cargo run --release --example text_zoo_selection
//! ```

use transfergraph_repro::core::{evaluate, EvalOptions, FeatureSet, Strategy, Workbench};
use transfergraph_repro::embed::LearnerKind;
use transfergraph_repro::predict::RegressorKind;
use transfergraph_repro::transfer::{Labels, Leep, LogMe, Nce, Scorer};
use transfergraph_repro::zoo::{Modality, ModelZoo, ZooConfig};

fn main() {
    let zoo = ModelZoo::build(&ZooConfig::paper(2024));
    let target = zoo.dataset_by_name("tweet_eval/irony");
    let models = zoo.models_of(Modality::Text);

    // Direct use of the transferability estimators on one candidate, via
    // the unified `Scorer` trait: validate the labels once, then score.
    // LEEP and NCE consume the source-head probabilities as their matrix.
    let candidate = models[0];
    let fp = zoo.forward_pass(candidate, target);
    let labels = Labels::new(&fp.labels, fp.num_classes).expect("valid forward-pass labels");
    println!(
        "candidate {}: LogME {:.3}, LEEP {:.3}, NCE {:.3}\n",
        zoo.model(candidate).name,
        LogMe::batched()
            .score(&fp.features, &labels)
            .expect("LogME scores valid features"),
        Leep.score(&fp.source_probs, &labels)
            .expect("LEEP scores valid probabilities"),
        Nce.score(&fp.source_probs, &labels)
            .expect("NCE scores valid probabilities"),
    );

    // Compare TransferGraph variants on the irony-detection target.
    let opts = EvalOptions::default();
    let wb = Workbench::new(&zoo);
    println!("tweet_eval/irony — correlation with true fine-tune accuracy:");
    for (label, strategy) in [
        ("feature-based", Strategy::LogMe),
        ("metadata LR", Strategy::lr_baseline()),
        ("LR{all,LogME}", Strategy::lr_all_logme()),
        (
            "TG graph-only",
            Strategy::TransferGraph {
                regressor: RegressorKind::Linear,
                learner: LearnerKind::Node2VecPlus,
                features: FeatureSet::GraphOnly,
            },
        ),
        (
            "TG all features",
            Strategy::TransferGraph {
                regressor: RegressorKind::Linear,
                learner: LearnerKind::Node2VecPlus,
                features: FeatureSet::All,
            },
        ),
    ] {
        let out = evaluate(&wb, &strategy, target, &opts);
        println!(
            "  {:<16} τ {}   top-5 accuracy {:.3}",
            label,
            transfergraph_repro::core::report::fmt_corr(out.pearson),
            out.top5_accuracy
        );
    }
}
