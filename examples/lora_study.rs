//! LoRA robustness study (the paper's §VII-F): does the recommendation
//! pipeline still work when the user fine-tunes with LoRA instead of full
//! fine-tuning — and when the training history was collected with a
//! *different* method than the one being deployed?
//!
//! ```sh
//! cargo run --release --example lora_study
//! ```

use transfergraph_repro::core::{evaluate, EvalOptions, Strategy, Workbench};
use transfergraph_repro::zoo::{FineTuneMethod, Modality, ModelZoo, ZooConfig};

fn main() {
    let zoo = ModelZoo::build(&ZooConfig::paper(2024));
    let target = zoo.dataset_by_name("tweet_eval/sentiment");
    let models = zoo.models_of(Modality::Text);

    // How different are the two fine-tuning channels on this dataset?
    let full: Vec<f64> = models
        .iter()
        .map(|&m| zoo.fine_tune(m, target, FineTuneMethod::Full))
        .collect();
    let lora: Vec<f64> = models
        .iter()
        .map(|&m| zoo.fine_tune(m, target, FineTuneMethod::Lora))
        .collect();
    println!(
        "full-FT vs LoRA on tweet_eval/sentiment: corr {:.3}, mean gap {:+.4}\n",
        tg_linalg::stats::pearson(&full, &lora).unwrap(),
        tg_linalg::stats::mean(&full) - tg_linalg::stats::mean(&lora),
    );

    let strategy = Strategy::transfer_graph_default();
    let settings = [
        (
            "history full  / deploy full",
            FineTuneMethod::Full,
            FineTuneMethod::Full,
        ),
        (
            "history lora  / deploy lora",
            FineTuneMethod::Lora,
            FineTuneMethod::Lora,
        ),
        (
            "history full  / deploy lora",
            FineTuneMethod::Full,
            FineTuneMethod::Lora,
        ),
        (
            "history lora  / deploy full",
            FineTuneMethod::Lora,
            FineTuneMethod::Full,
        ),
    ];
    println!("TG:XGB,N2V+,all under method mismatch:");
    for (label, train, eval_m) in settings {
        let opts = EvalOptions {
            train_method: train,
            eval_method: eval_m,
            ..Default::default()
        };
        let wb = Workbench::new(&zoo);
        let out = evaluate(&wb, &strategy, target, &opts);
        println!(
            "  {label}: τ {}   top-5 {:.3}",
            transfergraph_repro::core::report::fmt_corr(out.pearson),
            out.top5_accuracy
        );
    }
    println!("\nTakeaway (matches §VII-F): method mismatch costs a little correlation but");
    println!("does not change which strategy family you should use.");
}
