//! Quickstart: rank a model zoo for a new target dataset in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use transfergraph_repro::core::{evaluate, EvalOptions, Strategy, Workbench};
use transfergraph_repro::zoo::{Modality, ModelZoo, ZooConfig};

fn main() {
    // 1. A model zoo. Here the bundled simulator; in a real deployment this
    //    is your registry of pre-trained models + training history.
    let zoo = ModelZoo::build(&ZooConfig::small(42));

    // 2. Pick the target dataset you want to fine-tune on.
    let target = zoo.dataset_by_name("stanfordcars");

    // 3. Run TransferGraph: graph construction → Node2Vec+ embeddings →
    //    XGBoost prediction, leave-one-out safe (no peeking at the target's
    //    fine-tuning results).
    let wb = Workbench::new(&zoo);
    let outcome = evaluate(
        &wb,
        &Strategy::transfer_graph_default(),
        target,
        &EvalOptions::default(),
    );

    // 4. The predictions rank every model in the zoo.
    let mut ranked: Vec<(usize, f64)> = outcome.predictions.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("Top-5 recommendations for `stanfordcars`:");
    for (rank, (idx, score)) in ranked.iter().take(5).enumerate() {
        let model = zoo.model(outcome.models[*idx]);
        println!(
            "  {}. {:<40} predicted {:.3}   (actual fine-tune accuracy {:.3})",
            rank + 1,
            model.name,
            score,
            outcome.ground_truth[*idx],
        );
    }
    println!(
        "\nPearson correlation with ground truth over all {} models: {}",
        outcome.models.len(),
        transfergraph_repro::core::report::fmt_corr(outcome.pearson)
    );
    let _ = Modality::Image; // re-exported for downstream users
}
