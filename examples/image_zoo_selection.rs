//! Image-zoo walkthrough: the scenario from the paper's introduction — a
//! practitioner must pick which of 185 heterogeneous image models (ViT,
//! Swin, ConvNeXT, ResNet, …) to fine-tune on a fine-grained dataset, and
//! cannot afford to fine-tune them all (1178 GPU-hours in the paper).
//!
//! Walks through the pipeline stage by stage, printing what each step
//! produces, then compares strategies on realised top-5 accuracy.
//!
//! ```sh
//! cargo run --release --example image_zoo_selection
//! ```

use transfergraph_repro::core::{evaluate, pipeline, EvalOptions, Strategy, Workbench};
use transfergraph_repro::embed::LearnerKind;
use transfergraph_repro::graph::GraphStats;
use transfergraph_repro::rng::Rng;
use transfergraph_repro::zoo::{FineTuneMethod, Modality, ModelZoo, ZooConfig};

fn main() {
    let zoo = ModelZoo::build(&ZooConfig::paper(2024));
    let target = zoo.dataset_by_name("pets");
    let models = zoo.models_of(Modality::Image);
    println!(
        "zoo: {} image models across {} architecture families; target: pets ({} samples, {} classes)\n",
        models.len(),
        transfergraph_repro::zoo::models::IMAGE_FAMILIES.len(),
        zoo.dataset(target).num_samples,
        zoo.dataset(target).num_classes,
    );

    // Stage 1 — feature collection (offline): probe embeddings, LogME.
    let wb = Workbench::new(&zoo);
    let sim_to_dogs = wb.similarity(
        zoo.dataset_by_name("stanford-dogs"),
        target,
        transfergraph_repro::core::Representation::DomainSimilarity,
    );
    let sim_to_digits = wb.similarity(
        zoo.dataset_by_name("street-digits"),
        target,
        transfergraph_repro::core::Representation::DomainSimilarity,
    );
    println!(
        "stage 1 (collection): φ(stanford-dogs, pets) = {sim_to_dogs:.3} vs φ(street-digits, pets) = {sim_to_digits:.3}"
    );

    // Stage 2 — graph construction (leave-one-out for `pets`).
    let history = zoo
        .full_history(Modality::Image, FineTuneMethod::Full)
        .excluding_dataset(target);
    let opts = EvalOptions::default();
    let inputs = pipeline::build_loo_graph_inputs(&wb, target, &history, &opts);
    let graph = transfergraph_repro::graph::build_graph(
        &inputs,
        &transfergraph_repro::graph::GraphConfig::default(),
    );
    let stats = GraphStats::compute(&graph);
    println!(
        "stage 2 (graph): {} nodes, avg degree {:.1}, {} accuracy edges, {} transferability edges",
        stats.num_nodes, stats.avg_degree, stats.md_accuracy_edges, stats.md_transferability_edges
    );

    // Stage 3 — graph learning.
    let loo = pipeline::learn_loo_graph(
        &wb,
        target,
        &history,
        LearnerKind::Node2VecPlus,
        &opts,
        &mut Rng::seed_from_u64(7),
    );
    println!(
        "stage 3 (learning): Node2Vec+ produced {}×{} node embeddings",
        loo.embeddings.rows(),
        loo.embeddings.cols()
    );

    // Stage 4 — prediction + recommendation, against the baselines.
    println!("\nstage 4 (recommendation) — top-5 realised accuracy per strategy:");
    for strategy in [
        Strategy::Random,
        Strategy::LogMe,
        Strategy::lr_all_logme(),
        Strategy::transfer_graph_default(),
    ] {
        let out = evaluate(&wb, &strategy, target, &opts);
        println!(
            "  {:<18} top-5 accuracy {:.3}   τ {}",
            out.strategy,
            out.top5_accuracy,
            transfergraph_repro::core::report::fmt_corr(out.pearson)
        );
    }
    let best = models
        .iter()
        .map(|&m| zoo.fine_tune(m, target, FineTuneMethod::Full))
        .fold(f64::NEG_INFINITY, f64::max);
    println!("  (best single model in the zoo reaches {best:.3})");
}
